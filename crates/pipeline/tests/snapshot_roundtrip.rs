//! Snapshot/restore round-trip property tests.
//!
//! A [`ProcessorSnapshot`] taken at an arbitrary mid-run point and
//! restored into a **fresh** processor must continue to an end state
//! byte-identical to the donor's — outcome, statistics, cycles,
//! registers, and block-execution counters — for the baseline
//! (`NullMonitor`) and CIC-monitored processors, under block dispatch
//! and per-instruction stepping, and in post-tamper states where the
//! cut lands between a bail-out and the detection that follows it.

use proptest::prelude::*;

use cimon_asm::assemble;
use cimon_core::hash::hash_words;
use cimon_core::{BlockRecord, CicConfig, HashAlgoKind};
use cimon_os::FullHashTable;
use cimon_pipeline::{BlockExec, Processor, ProcessorConfig};

/// A generated random program: counted backward loops, ALU/memory
/// traffic, and a clean exit (same shape as `chain_mask_diff.rs`).
#[derive(Clone, Debug)]
struct RandomProgram {
    source: String,
}

prop_compose! {
    fn arb_program()(
        loops in 1usize..4,
        body in 1usize..6,
        seed in any::<u64>(),
    ) -> RandomProgram {
        use std::fmt::Write as _;
        let mut src = String::from("    .data\nbuf: .word ");
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as u32
        };
        for i in 0..16 {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(src, "{sep}{}", next());
        }
        src.push_str("\n    .text\nmain:\n");
        let regs = ["$t0", "$t1", "$t2", "$t3", "$t4", "$t5"];
        for r in regs {
            let _ = writeln!(src, "    li {r}, {}", next() as i32 % 500);
        }
        for l in 0..loops {
            let trips = 2 + next() % 9;
            let _ = writeln!(src, "    li $s0, {trips}");
            let _ = writeln!(src, "L{l}:");
            for _ in 0..body {
                let a = regs[(next() % 6) as usize];
                let b = regs[(next() % 6) as usize];
                let c = regs[(next() % 6) as usize];
                match next() % 8 {
                    0 => { let _ = writeln!(src, "    addu {a}, {b}, {c}"); }
                    1 => { let _ = writeln!(src, "    subu {a}, {b}, {c}"); }
                    2 => { let _ = writeln!(src, "    xor {a}, {b}, {c}"); }
                    3 => { let _ = writeln!(src, "    addiu {a}, {b}, {}", next() as i32 % 100); }
                    4 => { let _ = writeln!(src, "    lw {a}, {}($gp)", (next() % 16) * 4); }
                    5 => { let _ = writeln!(src, "    sw {a}, {}($gp)", (next() % 16) * 4); }
                    6 => { let _ = writeln!(src, "    mult {a}, {b}"); }
                    _ => { let _ = writeln!(src, "    mflo {a}"); }
                }
            }
            let _ = writeln!(src, "    addiu $s0, $s0, -1");
            let _ = writeln!(src, "    bnez $s0, L{l}");
        }
        src.push_str("    move $a0, $t0\n    li $v0, 10\n    syscall\n");
        RandomProgram { source: src }
    }
}

/// The exact FHT for a program from its recorded block trace.
fn trace_fht(image: &cimon_mem::ProgramImage) -> FullHashTable {
    let mut cpu = Processor::new(
        image,
        ProcessorConfig {
            record_blocks: true,
            ..ProcessorConfig::baseline()
        },
    );
    cpu.run();
    let mem = image.to_memory();
    cpu.blocks()
        .iter()
        .map(|b| {
            let words = b.key.addresses().map(|a| mem.read_u32(a).unwrap());
            BlockRecord {
                key: b.key,
                hash: hash_words(HashAlgoKind::Xor, 0, words),
            }
        })
        .collect()
}

/// Cut a run at `cut` retired instructions, snapshot, restore into a
/// fresh processor, and demand that donor and clone finish with
/// byte-identical end state.
fn assert_round_trip(
    image: &cimon_mem::ProgramImage,
    config: &ProcessorConfig,
    cut: u64,
    tamper: Option<(u32, u8)>,
) {
    let prepare = |cpu: &mut Processor| {
        if let Some((victim, bit)) = tamper {
            let old = cpu.mem().read_u32(victim).unwrap();
            cpu.mem_mut().write_u32(victim, old ^ (1 << bit)).unwrap();
        }
    };
    let mut donor = Processor::new(image, config.clone());
    prepare(&mut donor);
    if donor.run_to_instret(cut).is_some() {
        // The run ended before the cut (tampering can shorten runs):
        // nothing mid-run to snapshot, and that is fine.
        return;
    }
    let snap = donor.snapshot();
    assert_eq!(snap.instret(), donor.instret());

    let mut clone = Processor::new(image, config.clone());
    // Deliberately *no* `prepare`: the snapshot must carry the
    // tampered memory itself.
    clone.restore(&snap).expect("uncorrupted snapshot restores");
    assert_eq!(clone.instret(), donor.instret());
    assert_eq!(clone.pc(), donor.pc());

    let donor_out = donor.run();
    let clone_out = clone.run();
    assert_eq!(donor_out, clone_out, "outcome diverged after restore");
    assert_eq!(donor.stats(), clone.stats(), "stats diverged after restore");
    assert_eq!(
        donor.cycles(),
        clone.cycles(),
        "cycles diverged after restore"
    );
    assert_eq!(
        donor.regs().snapshot(),
        clone.regs().snapshot(),
        "registers diverged after restore"
    );
    assert_eq!(
        donor.block_stats(),
        clone.block_stats(),
        "block-exec counters diverged after restore"
    );
}

fn variants(fht: FullHashTable) -> Vec<ProcessorConfig> {
    let monitored = ProcessorConfig::monitored(CicConfig::with_entries(8), fht);
    let mut configs = Vec::new();
    for base in [ProcessorConfig::baseline(), monitored] {
        for block in [BlockExec::On, BlockExec::Off] {
            let mut c = base.clone();
            c.block_exec = block;
            // Tampering can manufacture unbounded loops; bound them so
            // a case stays cheap while still outliving every clean run.
            c.max_cycles = 50_000;
            configs.push(c);
        }
    }
    configs
}

proptest! {
    #[test]
    fn snapshots_round_trip_at_arbitrary_cuts(
        p in arb_program(),
        cut in 1u64..400,
    ) {
        let prog = assemble(&p.source).expect("generated program assembles");
        let fht = trace_fht(&prog.image);
        for config in variants(fht) {
            assert_round_trip(&prog.image, &config, cut, None);
        }
    }

    #[test]
    fn corrupted_snapshots_never_restore_silently(
        p in arb_program(),
        cut in 1u64..400,
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        // A snapshot whose memory is bit-flipped after capture must be
        // rejected by the restore-time integrity checksum — never
        // silently accepted to produce a divergent run.
        let prog = assemble(&p.source).expect("generated program assembles");
        let fht = trace_fht(&prog.image);
        for config in variants(fht) {
            let mut donor = Processor::new(&prog.image, config.clone());
            if donor.run_to_instret(cut).is_some() {
                continue;
            }
            let mut snap = donor.snapshot();
            let addr = prog.image.text.base
                + byte_idx.index(prog.image.text.bytes.len()) as u32;
            snap.corrupt_bit(addr, bit);
            let mut clone = Processor::new(&prog.image, config.clone());
            let err = clone.restore(&snap).expect_err("corrupt snapshot must be rejected");
            prop_assert_eq!(err.kind(), "snapshot-corrupt");
            // And the rejection happens before any state is adopted:
            // the clone still restores cleanly from an intact snapshot.
            let intact = donor.snapshot();
            clone.restore(&intact).expect("intact snapshot restores");
            prop_assert_eq!(clone.instret(), donor.instret());
        }
    }

    #[test]
    fn post_tamper_snapshots_round_trip(
        p in arb_program(),
        cut in 1u64..400,
        word_idx in any::<prop::sample::Index>(),
        bit in 0u8..32,
    ) {
        let prog = assemble(&p.source).expect("generated program assembles");
        let n_words = prog.image.text.bytes.len() / 4;
        let victim = prog.image.text.base + 4 * word_idx.index(n_words) as u32;
        let fht = trace_fht(&prog.image);
        for config in variants(fht) {
            assert_round_trip(&prog.image, &config, cut, Some((victim, bit)));
        }
    }
}
