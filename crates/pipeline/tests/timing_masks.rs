//! Differential property tests for the scheduler's mask and block fast
//! paths.
//!
//! [`Timing::issue`] — the slice-based path the per-instruction
//! processor loop runs — is the oracle. [`Timing::issue_masks`] (the
//! block loop's per-instruction path) and
//! [`Timing::issue_block`]/[`Timing::plan_fits`] (the fused whole-body
//! replay) must assign bit-identical ID cycles to random instruction
//! streams, across `stall()` interleavings, redirect bubbles, multiply
//! and divide latencies, and arbitrary live-in readiness left behind by
//! a random prefix.

use proptest::prelude::*;

use cimon_isa::{Funct, IOpcode, IType, Instr, RType, Reg};
use cimon_pipeline::predecode::PredecodedEntry;
use cimon_pipeline::{BlockPlan, Timing, TimingConfig};

/// Deterministic stream generator (mirrors `block_exec_diff.rs`).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as u32
    }

    fn reg(&mut self) -> Reg {
        // A small register pool so streams actually collide on
        // producers/consumers (register 0 excluded: `$zero` never
        // interlocks and the masks never carry it).
        Reg::new(8 + (self.next() % 8) as u8).expect("valid index")
    }
}

/// One random instruction drawn from every timing-relevant shape.
/// `cf_ok` permits control-flow instructions (stream mode); block
/// bodies are straight-line and pass `false`.
fn random_instr(rng: &mut Rng, cf_ok: bool) -> Instr {
    let rs = rng.reg();
    let rt = rng.reg();
    let rd = rng.reg();
    let shapes = if cf_ok { 9 } else { 7 };
    match rng.next() % shapes {
        // ALU register op: two sources, one dest.
        0 => Instr::R(RType {
            funct: Funct::Addu,
            rs,
            rt,
            rd,
            shamt: 0,
        }),
        // Load: EX-level producer with the longer forwarding distance.
        1 => Instr::I(IType {
            opcode: IOpcode::Lw,
            rs,
            rt,
            imm: (rng.next() % 64) as u16 * 4,
        }),
        // Store: reads two registers, writes none.
        2 => Instr::I(IType {
            opcode: IOpcode::Sw,
            rs,
            rt,
            imm: (rng.next() % 64) as u16 * 4,
        }),
        // Multiply / divide: HI/LO writers with configured latency.
        3 => Instr::R(RType {
            funct: if rng.next() % 2 == 0 {
                Funct::Mult
            } else {
                Funct::Div
            },
            rs,
            rt,
            rd: Reg::ZERO,
            shamt: 0,
        }),
        // HI/LO readers.
        4 => Instr::R(RType {
            funct: if rng.next() % 2 == 0 {
                Funct::Mfhi
            } else {
                Funct::Mflo
            },
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            rd,
            shamt: 0,
        }),
        // Immediate ALU op: one source, one dest.
        5 => Instr::I(IType {
            opcode: IOpcode::Addiu,
            rs,
            rt,
            imm: (rng.next() % 100) as u16,
        }),
        // No-source producer (`lui`).
        6 => Instr::I(IType {
            opcode: IOpcode::Lui,
            rs: Reg::ZERO,
            rt,
            imm: (rng.next() % 1000) as u16,
        }),
        // Branch: ID-stage reader, may redirect fetch.
        7 => Instr::I(IType {
            opcode: IOpcode::Beq,
            rs,
            rt,
            imm: 4,
        }),
        // Register jump: ID-stage reader, always redirects.
        _ => Instr::R(RType {
            funct: Funct::Jr,
            rs,
            rt: Reg::ZERO,
            rd: Reg::ZERO,
            shamt: 0,
        }),
    }
}

fn entry(rng: &mut Rng, cf_ok: bool) -> PredecodedEntry {
    // The word/PC feed only decode-identity and branch targets, which
    // the scheduler never reads.
    PredecodedEntry::new(0x0040_0000, 0, random_instr(rng, cf_ok))
}

fn config(rng: &mut Rng) -> TimingConfig {
    // Default latencies plus degenerate single-cycle units.
    match rng.next() % 3 {
        0 => TimingConfig::default(),
        1 => TimingConfig {
            mult_latency: 1,
            div_latency: 1,
        },
        _ => TimingConfig {
            mult_latency: 7,
            div_latency: 23,
        },
    }
}

/// Issue one entry through the slice-based oracle.
fn issue_oracle(t: &mut Timing, e: &PredecodedEntry, taken: bool) -> u64 {
    t.issue(
        e.klass,
        e.sources.as_slice(),
        e.reads_hi,
        e.reads_lo,
        e.dest,
        e.writes_hilo,
        taken,
    )
}

/// Expose both readiness tables of a schedule through architectural
/// probes: the ID cycle of a reader of each register (at the ID and the
/// EX level) is a pure function of the internal state, so two schedules
/// that answer every probe identically — while being mutated
/// identically — are equal where it matters.
fn probe_all(a: &mut Timing, b: &mut Timing) {
    use cimon_pipeline::timing::IssueClass;
    for idx in 0..32u8 {
        let r = Reg::new(idx).expect("valid");
        for class in [IssueClass::IdReader, IssueClass::Alu] {
            let ida = a.issue(class, &[r], false, false, None, false, false);
            let idb = b.issue(class, &[r], false, false, None, false, false);
            assert_eq!(ida, idb, "probe diverged on r{idx} {class:?}");
        }
    }
    for (hi, lo) in [(true, false), (false, true)] {
        for class in [IssueClass::IdReader, IssueClass::Alu] {
            let ida = a.issue(class, &[], hi, lo, None, false, false);
            let idb = b.issue(class, &[], hi, lo, None, false, false);
            assert_eq!(ida, idb, "HI/LO probe diverged");
        }
    }
}

proptest! {
    /// `issue_masks` is cycle- and stat-identical to `issue` on random
    /// streams with stalls and redirect bubbles interleaved.
    #[test]
    fn issue_masks_matches_issue(seed in any::<u64>(), n in 1usize..250) {
        let mut rng = Rng(seed);
        let cfg = config(&mut rng);
        let mut oracle = Timing::new(cfg);
        let mut fast = Timing::new(cfg);
        for _ in 0..n {
            if rng.next() % 8 == 0 {
                let s = (rng.next() % 150) as u64;
                oracle.stall(s);
                fast.stall(s);
                continue;
            }
            let e = entry(&mut rng, true);
            let taken = e.is_control_flow && rng.next() % 2 == 0;
            let id_o = issue_oracle(&mut oracle, &e, taken);
            let id_f = fast.issue_masks(e.klass, e.src_mask, e.dest_mask, taken);
            prop_assert_eq!(id_o, id_f);
        }
        prop_assert_eq!(oracle.cycles(), fast.cycles());
        prop_assert_eq!(oracle.instructions(), fast.instructions());
        prop_assert_eq!(oracle.stall_cycles(), fast.stall_cycles());
        probe_all(&mut oracle, &mut fast);
    }

    /// A planned block body replayed through `issue_block` leaves the
    /// schedule bit-identical to issuing the body sequentially — from
    /// arbitrary live-in readiness (random prefix), with and without a
    /// preceding redirect, across latency configurations. When the plan
    /// does not fit (a live-in interlock binds), the caller's mask-path
    /// fallback must agree too.
    #[test]
    fn issue_block_matches_sequential(
        seed in any::<u64>(),
        prefix_n in 0usize..40,
        body_n in 0usize..24,
    ) {
        let mut rng = Rng(seed);
        let cfg = config(&mut rng);
        let mut oracle = Timing::new(cfg);
        // Random prefix: leaves arbitrary readiness/redirect state.
        for _ in 0..prefix_n {
            if rng.next() % 10 == 0 {
                oracle.stall((rng.next() % 120) as u64);
                continue;
            }
            let e = entry(&mut rng, true);
            let taken = e.is_control_flow && rng.next() % 2 == 0;
            issue_oracle(&mut oracle, &e, taken);
        }
        let mut fast = oracle.clone();

        // A straight-line body, planned once.
        let body: Vec<PredecodedEntry> =
            (0..body_n).map(|_| entry(&mut rng, false)).collect();
        let plan = BlockPlan::build(&body, cfg);
        prop_assert_eq!(plan.body_len(), body.len());

        for e in &body {
            issue_oracle(&mut oracle, e, false);
        }
        let x = fast.block_entry_id();
        let fits = fast.plan_fits(&plan, u64::MAX);
        if fits && !body.is_empty() {
            fast.issue_block(&plan, x);
        } else {
            for e in &body {
                fast.issue_masks(e.klass, e.src_mask, e.dest_mask, false);
            }
        }

        // A dynamic terminator on both sides (the processor always
        // issues the block-ending instruction individually).
        let term = entry(&mut rng, true);
        let taken = term.is_control_flow && rng.next() % 2 == 0;
        let id_o = issue_oracle(&mut oracle, &term, taken);
        let id_f = fast.issue_masks(term.klass, term.src_mask, term.dest_mask, taken);
        prop_assert_eq!(id_o, id_f, "terminator diverged (plan fit: {})", fits);

        prop_assert_eq!(oracle.cycles(), fast.cycles());
        prop_assert_eq!(oracle.instructions(), fast.instructions());
        probe_all(&mut oracle, &mut fast);
    }

    /// Dropping a plan's provably-dead live-in tail is safe from ANY
    /// reachable schedule state: `plan_fits_prefix` over just the
    /// binding prefix answers exactly like the full `plan_fits`, for
    /// random prior streams, random bodies, and every latency
    /// configuration — the contract the per-slot chronically-dead
    /// skip bit in the dispatcher relies on.
    #[test]
    fn dead_live_in_tail_never_changes_plan_fits(
        seed in any::<u64>(),
        prefix_n in 0usize..40,
        body_n in 0usize..24,
        budget in any::<prop::sample::Index>(),
    ) {
        let mut rng = Rng(seed);
        let cfg = config(&mut rng);
        let mut t = Timing::new(cfg);
        for _ in 0..prefix_n {
            if rng.next() % 10 == 0 {
                t.stall((rng.next() % 120) as u64);
                continue;
            }
            let e = entry(&mut rng, true);
            let taken = e.is_control_flow && rng.next() % 2 == 0;
            issue_oracle(&mut t, &e, taken);
        }
        let body: Vec<PredecodedEntry> =
            (0..body_n).map(|_| entry(&mut rng, false)).collect();
        let plan = BlockPlan::build(&body, cfg);
        prop_assert_eq!(
            plan.live_in_checks(),
            plan.binding_live_in_checks() + plan.provably_dead_checks()
        );
        // Tight and loose budgets around the current schedule position.
        for max_cycles in [
            u64::MAX,
            t.cycles() + budget.index(64) as u64,
        ] {
            prop_assert_eq!(
                t.plan_fits(&plan, max_cycles),
                t.plan_fits_prefix(&plan, max_cycles, plan.binding_live_in_checks()),
                "skip-bit prefix diverged from the full check"
            );
        }
    }

    /// `plan_fits` is exact about the cycle budget: whenever it accepts
    /// a block, sequential stepping would not have hit `MaxCycles`
    /// before the terminator's budget poll.
    #[test]
    fn plan_fits_budget_bound_is_exact(seed in any::<u64>(), body_n in 1usize..24) {
        let mut rng = Rng(seed);
        let cfg = TimingConfig::default();
        let mut t = Timing::new(cfg);
        // Warm the schedule a little.
        for _ in 0..(rng.next() % 8) {
            let e = entry(&mut rng, true);
            issue_oracle(&mut t, &e, false);
        }
        let body: Vec<PredecodedEntry> =
            (0..body_n).map(|_| entry(&mut rng, false)).collect();
        let plan = BlockPlan::build(&body, cfg);

        // Replay sequentially and find the cycle count before the
        // terminator's poll.
        let mut seq = t.clone();
        for e in &body {
            issue_oracle(&mut seq, e, false);
        }
        let before_terminator = seq.cycles();

        // plan_fits at exactly that budget must accept; one cycle less
        // must reject (the terminator's poll would fire).
        prop_assert!(t.plan_fits(&plan, before_terminator) || !t.plan_fits(&plan, u64::MAX));
        if t.plan_fits(&plan, u64::MAX) {
            prop_assert!(t.plan_fits(&plan, before_terminator));
            prop_assert!(!t.plan_fits(&plan, before_terminator - 1));
        }
    }
}
