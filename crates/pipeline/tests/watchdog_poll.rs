//! The configurable watchdog poll stride
//! ([`ProcessorConfig::watchdog_poll_bits`]).
//!
//! The watchdog samples the wall clock every 2^bits retired
//! instructions, so the poll stride bounds how far a run overshoots an
//! expired deadline. These tests pin that tolerance with an
//! already-expired deadline (`Duration::ZERO`): the run must stop at
//! its *first* poll, which lands within one stride plus one dispatch
//! of block-grouped instructions.

use std::time::Duration;

use cimon_asm::assemble;
use cimon_pipeline::{
    Processor, ProcessorConfig, RunOutcome, DEFAULT_WATCHDOG_POLL_BITS, MAX_BLOCK_LEN,
};

/// A loop that retires far more instructions than any tested stride.
const SPIN: &str = "
    .text
main:
    li   $t0, 200000
loop:
    addiu $t0, $t0, -1
    bnez $t0, loop
    li   $a0, 1
    li   $v0, 10
    syscall
";

fn run_with_bits(bits: u32) -> (RunOutcome, u64) {
    let prog = assemble(SPIN).expect("spin assembles");
    let mut cpu = Processor::new(
        &prog.image,
        ProcessorConfig {
            max_wall: Some(Duration::ZERO),
            watchdog_poll_bits: bits,
            ..ProcessorConfig::baseline()
        },
    );
    let outcome = cpu.run();
    let instructions = cpu.stats().instructions;
    (outcome, instructions)
}

#[test]
fn tighter_polling_detects_an_expired_deadline_within_tolerance() {
    // With a 2^4 stride the first clock sample happens within 16
    // retirements (plus the block in flight), so the expired deadline
    // is seen almost immediately.
    let (outcome, instructions) = run_with_bits(4);
    assert_eq!(outcome, RunOutcome::Watchdog);
    let tolerance = (1u64 << 4) + MAX_BLOCK_LEN as u64;
    assert!(
        instructions <= tolerance,
        "bits=4 must stop within {tolerance} instructions, ran {instructions}"
    );
}

#[test]
fn default_stride_is_two_to_the_sixteen() {
    assert_eq!(
        ProcessorConfig::baseline().watchdog_poll_bits,
        DEFAULT_WATCHDOG_POLL_BITS
    );
    // The default stride does NOT see the expired deadline before
    // 2^16 retirements — that is exactly the latency/overhead trade
    // the knob exposes.
    let (outcome, instructions) = run_with_bits(DEFAULT_WATCHDOG_POLL_BITS);
    assert_eq!(outcome, RunOutcome::Watchdog);
    assert!(
        instructions >= 1 << DEFAULT_WATCHDOG_POLL_BITS,
        "default stride polled early: {instructions}"
    );
    assert!(instructions <= (1 << DEFAULT_WATCHDOG_POLL_BITS) + MAX_BLOCK_LEN as u64);
}

#[test]
fn poll_bits_are_clamped_and_unarmed_runs_never_poll() {
    // Absurd bits clamp to 2^32 — the run just finishes (600k retired
    // instructions never reach the first poll).
    let prog = assemble(SPIN).expect("spin assembles");
    let mut cpu = Processor::new(
        &prog.image,
        ProcessorConfig {
            max_wall: Some(Duration::ZERO),
            watchdog_poll_bits: 63,
            ..ProcessorConfig::baseline()
        },
    );
    assert_eq!(cpu.run(), RunOutcome::Exited { code: 1 });

    // And without a deadline the knob is inert.
    let mut cpu = Processor::new(
        &prog.image,
        ProcessorConfig {
            watchdog_poll_bits: 4,
            ..ProcessorConfig::baseline()
        },
    );
    assert_eq!(cpu.run(), RunOutcome::Exited { code: 1 });
}
