//! Seeded, deterministic-under-test retry/reconnect backoff.
//!
//! Plain exponential backoff synchronises retries: every client that
//! failed together retries together, and the thundering herd re-sheds
//! itself. The usual fix is random jitter — but randomness is exactly
//! what the chaos differentials cannot tolerate, because an oracle run
//! and a killed-and-restarted run must make identical timing-adjacent
//! decisions to produce byte-identical results.
//!
//! So jitter here is a pure function of `(seed, attempt)`: a SplitMix64
//! draw picks a delay in `[base/2, base]` of the exponential envelope.
//! Tests pin the seed and get reproducible schedules; production
//! callers derive the seed from per-request state (the request key, a
//! connection counter) and get decorrelated retries across requests —
//! the herd-splitting benefit without a single nondeterministic bit.

use std::time::Duration;

/// SplitMix64 — same generator the chaos harness uses, kept local so
/// the backoff schedule never couples to chaos-site draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The jittered delay before retry `attempt` (0-based): a seeded draw
/// from `[envelope/2, envelope]` where `envelope = base << attempt`
/// (saturating, capped at 30s so a runaway attempt counter cannot
/// produce an effectively-infinite sleep).
pub fn jittered(base: Duration, attempt: u32, seed: u64) -> Duration {
    const CAP: Duration = Duration::from_secs(30);
    let envelope = base
        .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
        .unwrap_or(CAP)
        .min(CAP);
    let half = envelope / 2;
    let span = (envelope - half).as_nanos() as u64;
    if span == 0 {
        return envelope;
    }
    let draw = splitmix64(seed ^ u64::from(attempt)) % (span + 1);
    half + Duration::from_nanos(draw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_and_attempt_always_draw_the_same_delay() {
        for attempt in 0..6 {
            let a = jittered(Duration::from_millis(10), attempt, 0xFEED);
            let b = jittered(Duration::from_millis(10), attempt, 0xFEED);
            assert_eq!(a, b, "attempt {attempt} wavered");
        }
    }

    #[test]
    fn delays_stay_inside_the_exponential_envelope() {
        let base = Duration::from_millis(8);
        for seed in [0u64, 1, 0xC1A05, u64::MAX] {
            for attempt in 0..8 {
                let d = jittered(base, attempt, seed);
                let envelope = (base * (1 << attempt)).min(Duration::from_secs(30));
                assert!(d >= envelope / 2, "seed {seed} attempt {attempt}: {d:?}");
                assert!(d <= envelope, "seed {seed} attempt {attempt}: {d:?}");
            }
        }
    }

    #[test]
    fn different_seeds_decorrelate_the_schedule() {
        let base = Duration::from_millis(10);
        let distinct: std::collections::HashSet<Duration> =
            (0..32).map(|s| jittered(base, 2, s)).collect();
        assert!(
            distinct.len() > 16,
            "seeds barely move the draw: {} distinct",
            distinct.len()
        );
    }

    #[test]
    fn huge_attempt_counts_saturate_instead_of_overflowing() {
        let d = jittered(Duration::from_millis(10), u32::MAX, 7);
        assert!(d <= Duration::from_secs(30));
        assert!(d >= Duration::from_secs(15));
    }

    #[test]
    fn zero_base_never_divides_by_zero() {
        assert_eq!(jittered(Duration::ZERO, 3, 9), Duration::ZERO);
    }
}
