//! The `cimon-serve` daemon: a crash-safe, back-pressured simulation
//! service over TCP.
//!
//! ```text
//! cimon-serve [--addr HOST:PORT] [--journal PATH] [--queue N]
//!             [--workers N] [--chunk N] [--deadline-ms N]
//! ```
//!
//! See `docs/serve.md` for the wire protocol and operational contract.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use cimon_serve::{net, ServeConfig, Server};

struct Args {
    addr: String,
    journal: Option<PathBuf>,
    cfg: ServeConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:4650".to_string(),
        journal: None,
        cfg: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--journal" => args.journal = Some(PathBuf::from(value("--journal")?)),
            "--queue" => {
                args.cfg.queue_capacity = parse_num(&value("--queue")?, "--queue")?;
            }
            "--workers" => {
                args.cfg.workers = parse_num(&value("--workers")?, "--workers")?;
            }
            "--chunk" => {
                args.cfg.campaign_chunk = parse_num(&value("--chunk")?, "--chunk")?;
            }
            "--deadline-ms" => {
                let ms: u64 = parse_num(&value("--deadline-ms")?, "--deadline-ms")?;
                args.cfg.default_deadline = Some(Duration::from_millis(ms));
            }
            "--help" | "-h" => {
                println!(
                    "usage: cimon-serve [--addr HOST:PORT] [--journal PATH] [--queue N] \
                     [--workers N] [--chunk N] [--deadline-ms N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(raw: &str, name: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("flag {name}: `{raw}` is not a valid number"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(m) => {
            eprintln!("cimon-serve: {m}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(args.cfg, args.journal.as_deref()) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("cimon-serve: startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let m = server.metrics();
    if m.journal_torn > 0 || m.journal_corrupt_dropped > 0 {
        eprintln!(
            "cimon-serve: journal recovery truncated a torn tail: {}, dropped corrupt records: {}",
            m.journal_torn, m.journal_corrupt_dropped
        );
    }
    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cimon-serve: bind {} failed: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(a) => println!("cimon-serve: listening on {a}"),
        Err(_) => println!("cimon-serve: listening on {}", args.addr),
    }
    let accept = match net::serve(server, listener) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cimon-serve: accept loop failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The accept loop runs until a drain request stops the server.
    if accept.join().is_err() {
        eprintln!("cimon-serve: accept loop panicked");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
