//! A small blocking client for the TCP front, including the
//! reconnect-and-resume side of streamed sweeps.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use cimon_core::SimError;
use cimon_sim::engine::ResultRow;

use crate::backoff;
use crate::protocol::{self, Request, RequestBody, Response, ResumeFrom};

fn io_err(context: &str, e: std::io::Error) -> SimError {
    SimError::Io {
        message: format!("{context}: {e}"),
    }
}

/// Reconnection policy for [`Client::sweep`].
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Base delay before a reconnect attempt; successive attempts back
    /// off exponentially under seeded jitter ([`backoff::jittered`]).
    pub reconnect_backoff: Duration,
    /// Reconnect attempts (per cut) before the sweep gives up with the
    /// underlying error.
    pub max_reconnects: u32,
    /// Seed for the deterministic reconnect jitter — fix it in tests
    /// for a reproducible schedule.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            reconnect_backoff: Duration::from_millis(20),
            max_reconnects: 5,
            jitter_seed: 0x00C0_FFEE,
        }
    }
}

/// A blocking connection to a `cimon-serve` daemon: one request line
/// out, one response line back, in order — plus the streamed-sweep
/// path, where one request yields many `sweep-row` lines.
pub struct Client {
    addr: SocketAddr,
    cfg: ClientConfig,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a server with the default reconnection policy.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, SimError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect with an explicit reconnection policy.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] when the connection cannot be established.
    pub fn connect_with(addr: impl ToSocketAddrs, cfg: ClientConfig) -> Result<Client, SimError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| io_err("address resolution failed", e))?
            .next()
            .ok_or_else(|| SimError::Io {
                message: "address resolved to nothing".to_string(),
            })?;
        let (reader, writer) = open(addr)?;
        Ok(Client {
            addr,
            cfg,
            reader,
            writer,
        })
    }

    /// Send a request and block for its response line.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] on a broken connection (including a server
    /// killed before responding); [`SimError::Protocol`] when the
    /// response line does not parse. Typed *error responses* are not
    /// an `Err` — they come back as [`Response::Error`].
    pub fn request(&mut self, req: &Request) -> Result<Response, SimError> {
        self.send_line(req)?;
        self.read_frame()
    }

    /// Run a sweep to completion, surviving cut streams and shed
    /// back-pressure: rows accumulate in order, and every time the
    /// stream dies before its `sweep-done` frame the client reconnects
    /// under jittered backoff and re-sends the request with a
    /// [`ResumeFrom`] cursor at the last row it actually received —
    /// the server re-streams only what is missing, serving
    /// already-journaled rows as replays.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] when the reconnect budget is exhausted;
    /// [`SimError::Protocol`] on frames that do not parse or arrive
    /// out of order; any typed error response the server sends
    /// (`resume-mismatch`, `invalid-config`, ...).
    pub fn sweep(&mut self, req: &Request) -> Result<Vec<ResultRow>, SimError> {
        if !matches!(req.body, RequestBody::Sweep(_)) {
            return Err(SimError::InvalidConfig {
                message: "Client::sweep needs a sweep request".to_string(),
            });
        }
        let key = req.key();
        let mut rows: Vec<ResultRow> = Vec::new();
        let mut reconnects = 0u32;
        loop {
            let attempt = Request {
                resume: rows.last().map(|_| ResumeFrom {
                    key,
                    last_acked_row: rows.len() as u64 - 1,
                }),
                ..req.clone()
            };
            match self.stream_once(&attempt, &mut rows) {
                Ok(done) => {
                    if done.0 != rows.len() as u64 {
                        return Err(SimError::Protocol {
                            message: format!(
                                "sweep-done claims {} rows, client holds {}",
                                done.0,
                                rows.len()
                            ),
                        });
                    }
                    return Ok(rows);
                }
                // The stream died below the protocol: cut socket, or a
                // shed stream's typed overload. Reconnect and resume.
                Err(RowStreamError::Cut(cause)) => {
                    if reconnects >= self.cfg.max_reconnects {
                        return Err(cause);
                    }
                    std::thread::sleep(backoff::jittered(
                        self.cfg.reconnect_backoff,
                        reconnects,
                        self.cfg.jitter_seed ^ key,
                    ));
                    reconnects += 1;
                    let (reader, writer) = open(self.addr)?;
                    self.reader = reader;
                    self.writer = writer;
                }
                Err(RowStreamError::Fatal(e)) => return Err(e),
            }
        }
    }

    /// One streaming attempt: send, then consume frames into `rows`
    /// until `sweep-done` or a cut.
    fn stream_once(
        &mut self,
        req: &Request,
        rows: &mut Vec<ResultRow>,
    ) -> Result<(u64, u64), RowStreamError> {
        self.send_line(req).map_err(RowStreamError::Cut)?;
        loop {
            match self.read_frame() {
                Err(e) => return Err(RowStreamError::Cut(e)),
                Ok(Response::SweepRow { row_index, row, .. }) => {
                    if row_index != rows.len() as u64 {
                        return Err(RowStreamError::Fatal(SimError::Protocol {
                            message: format!(
                                "sweep row {row_index} arrived with {} rows acked",
                                rows.len()
                            ),
                        }));
                    }
                    rows.push(row);
                }
                Ok(Response::SweepDone {
                    row_count,
                    resumed_from,
                    ..
                }) => return Ok((row_count, resumed_from)),
                // A shed stream's typed overload (or a draining
                // server) is retryable by reconnecting. So is a
                // protocol error: this client sent a well-formed line,
                // so the server seeing garbage means the *wire*
                // mangled it (the chaos corruption site does exactly
                // this) — and the retry budget bounds the pathological
                // case. Anything else the server says is final.
                Ok(Response::Error { error, .. }) => {
                    if matches!(
                        error,
                        SimError::Overloaded { .. }
                            | SimError::Draining
                            | SimError::Protocol { .. }
                    ) {
                        return Err(RowStreamError::Cut(error));
                    }
                    return Err(RowStreamError::Fatal(error));
                }
                Ok(other) => {
                    return Err(RowStreamError::Fatal(SimError::Protocol {
                        message: format!("unexpected frame in sweep stream: {other:?}"),
                    }))
                }
            }
        }
    }

    fn send_line(&mut self, req: &Request) -> Result<(), SimError> {
        let line = req.to_line();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| io_err("request write failed", e))
    }

    fn read_frame(&mut self) -> Result<Response, SimError> {
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| io_err("response read failed", e))?;
        if n == 0 {
            return Err(SimError::Io {
                message: "server closed the connection before responding".to_string(),
            });
        }
        protocol::parse_response(reply.trim_end())
    }
}

/// Why one streaming attempt ended without a terminal frame.
enum RowStreamError {
    /// The transport (or the server's stream buffer) gave out;
    /// reconnect-and-resume applies.
    Cut(SimError),
    /// The server answered, and the answer means stop.
    Fatal(SimError),
}

fn open(addr: SocketAddr) -> Result<(BufReader<TcpStream>, TcpStream), SimError> {
    let stream = TcpStream::connect(addr).map_err(|e| io_err("connect failed", e))?;
    // Request/response lines are tiny; Nagle only adds latency.
    let _ = stream.set_nodelay(true);
    let read_half = stream
        .try_clone()
        .map_err(|e| io_err("stream clone failed", e))?;
    Ok((BufReader::new(read_half), stream))
}
