//! A small blocking client for the TCP front.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use cimon_core::SimError;

use crate::protocol::{self, Request, Response};

fn io_err(context: &str, e: std::io::Error) -> SimError {
    SimError::Io {
        message: format!("{context}: {e}"),
    }
}

/// A blocking connection to a `cimon-serve` daemon: one request line
/// out, one response line back, in order.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, SimError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect failed", e))?;
        // Request/response lines are tiny; Nagle only adds latency.
        let _ = stream.set_nodelay(true);
        let read_half = stream
            .try_clone()
            .map_err(|e| io_err("stream clone failed", e))?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Send a request and block for its response line.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] on a broken connection (including a server
    /// killed before responding); [`SimError::Protocol`] when the
    /// response line does not parse. Typed *error responses* are not
    /// an `Err` — they come back as [`Response::Error`].
    pub fn request(&mut self, req: &Request) -> Result<Response, SimError> {
        let line = req.to_line();
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| io_err("request write failed", e))?;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| io_err("response read failed", e))?;
        if n == 0 {
            return Err(SimError::Io {
                message: "server closed the connection before responding".to_string(),
            });
        }
        protocol::parse_response(reply.trim_end())
    }
}
