//! The durable write-ahead result journal.
//!
//! Append-only JSONL: one flat JSON object per line, each carrying a
//! CRC-32 over its payload. A record is written and flushed *before*
//! the response leaves the server, so any result a client ever saw is
//! durable — a killed process replays the journal on startup and
//! serves completed work from it instead of re-simulating.
//!
//! Failure handling on replay:
//!
//! * **Torn tail** — a crash mid-append leaves a final line without a
//!   newline (or an empty fragment). The tail is truncated off the
//!   file and reported in [`Replay::torn_truncated`]; the half-written
//!   result was never acknowledged, so dropping it is correct.
//! * **Corrupt records** — a line whose CRC does not match (bit rot,
//!   or the chaos harness's injected flips) is dropped and counted in
//!   [`Replay::corrupt_dropped`]. The server simply recomputes that
//!   result; damaged storage degrades to lost work, never to wrong
//!   answers.
//! * **Rotation** — when the file grows past the configured limit it
//!   is compacted: the live records are written to a sibling temp file
//!   which is fsynced and atomically renamed over the journal, so a
//!   crash during rotation leaves either the old or the new file,
//!   never a mixture.
//! * **Directory durability** — renaming or creating a file makes the
//!   *data* durable only once the directory entry is too. The journal
//!   therefore fsyncs its parent directory after creating the file and
//!   after the rotation rename; without this, a power cut after a
//!   "successful" rotation could resurrect the pre-rotation journal —
//!   or no journal at all — on the next boot.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use cimon_bench::json::{self, FlatObject};
use cimon_sim::chaos;

/// CRC-32 (IEEE, bitwise) over a byte string — the same polynomial the
/// monitored pipeline's CRC hash unit implements.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Fsync the parent directory of `path`, making a just-created (or
/// just-renamed-over) directory entry itself durable.
fn fsync_parent(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// One journal record: a completed unit of work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// The request key ([`crate::Request::key`]) this result answers.
    pub key: u64,
    /// Record type: `"row"`, `"chunk"` or `"campaign"`.
    pub tag: String,
    /// Tag-specific qualifier (a chunk's `start..end` plan range;
    /// empty otherwise).
    pub extra: String,
    /// The payload: one flat JSON object rendering of the result.
    pub body: String,
}

impl Record {
    /// The canonical bytes the CRC covers.
    fn checked_payload(&self) -> String {
        format!(
            "{:016x}|{}|{}|{}",
            self.key, self.tag, self.extra, self.body
        )
    }

    /// Serialise as one journal line (with trailing newline).
    pub fn to_line(&self) -> String {
        format!(
            "{{\"crc\":\"{:08x}\",\"key\":\"{:016x}\",\"tag\":\"{}\",\"extra\":\"{}\",\
             \"body\":\"{}\"}}\n",
            crc32(self.checked_payload().as_bytes()),
            self.key,
            json::escape(&self.tag),
            json::escape(&self.extra),
            json::escape(&self.body),
        )
    }

    /// Parse and verify one journal line.
    ///
    /// # Errors
    ///
    /// A description of the syntax error or CRC mismatch.
    pub fn parse(line: &str) -> Result<Record, String> {
        let bodies = json::objects(line)?;
        let body = match bodies.as_slice() {
            [one] => one,
            other => return Err(format!("expected one record object, found {}", other.len())),
        };
        let obj = FlatObject::parse(body)?;
        let key = u64::from_str_radix(&obj.str("key")?, 16)
            .map_err(|_| "record key is not hex".to_string())?;
        let record = Record {
            key,
            tag: obj.str("tag")?,
            extra: obj.str("extra")?,
            body: obj.str("body")?,
        };
        let stored = u32::from_str_radix(&obj.str("crc")?, 16)
            .map_err(|_| "record crc is not hex".to_string())?;
        let actual = crc32(record.checked_payload().as_bytes());
        if stored != actual {
            return Err(format!(
                "crc mismatch: stored {stored:08x}, actual {actual:08x}"
            ));
        }
        Ok(record)
    }
}

/// What startup replay recovered from an existing journal.
#[derive(Debug, Default)]
pub struct Replay {
    /// Every record that parsed and passed its CRC, in append order.
    pub records: Vec<Record>,
    /// Complete lines dropped for CRC mismatch or bad syntax.
    pub corrupt_dropped: usize,
    /// Whether a torn (newline-less) tail was truncated off the file.
    pub torn_truncated: bool,
}

/// The append side of the journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    bytes: u64,
    appended: u64,
}

impl Journal {
    /// Open (or create) the journal at `path`, replaying whatever it
    /// already holds. Truncates a torn tail in place.
    ///
    /// # Errors
    ///
    /// Any I/O error touching the file.
    pub fn open(path: &Path) -> std::io::Result<(Journal, Replay)> {
        let mut replay = Replay::default();
        let mut existing = Vec::new();
        let created = !path.exists();
        if !created {
            File::open(path)?.read_to_end(&mut existing)?;
        }
        // Everything up to (and including) the last newline is a
        // sequence of complete lines; anything after it is a torn
        // append that was never acknowledged.
        let complete = match existing.iter().rposition(|&b| b == b'\n') {
            Some(nl) => nl + 1,
            None => 0,
        };
        if complete < existing.len() {
            replay.torn_truncated = true;
        }
        let text = String::from_utf8_lossy(&existing[..complete]);
        for line in text.lines() {
            match Record::parse(line) {
                Ok(r) => replay.records.push(r),
                Err(_) => replay.corrupt_dropped += 1,
            }
        }
        if replay.torn_truncated {
            // Drop the tail so the next append starts on a clean line.
            let keep = existing[..complete].to_vec();
            let mut f = File::create(path)?;
            f.write_all(&keep)?;
            f.sync_data()?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        if created {
            // The file's directory entry must be durable before any
            // record written through it can be considered durable.
            fsync_parent(path)?;
        }
        let bytes = file.metadata()?.len();
        Ok((
            Journal {
                path: path.to_path_buf(),
                file,
                bytes,
                appended: 0,
            },
            replay,
        ))
    }

    /// Append one record and flush it to the OS before returning — the
    /// durability point a response may only be sent after. Under
    /// `CIMON_CHAOS=1` the encoded line (newline excluded) may have one
    /// seeded bit flipped first, exercising the CRC verification on
    /// the replay side.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the file.
    pub fn append(&mut self, record: &Record, chaos_index: usize) -> std::io::Result<()> {
        let mut line = record.to_line().into_bytes();
        let payload_len = line.len() - 1;
        chaos::maybe_flip_journal_bit(chaos_index, &mut line[..payload_len]);
        self.file.write_all(&line)?;
        self.file.flush()?;
        self.bytes += line.len() as u64;
        self.appended += 1;
        Ok(())
    }

    /// Compact the journal down to `live` if it has outgrown
    /// `rotate_bytes`: write a sibling temp file, fsync it, and
    /// atomically rename it over the journal. Returns whether a
    /// rotation happened.
    ///
    /// # Errors
    ///
    /// Any I/O error during the rewrite; the original journal is
    /// untouched unless the final rename succeeded.
    pub fn rotate_if_needed(
        &mut self,
        rotate_bytes: u64,
        live: &[Record],
    ) -> std::io::Result<bool> {
        if self.bytes <= rotate_bytes {
            return Ok(false);
        }
        let tmp = self.path.with_extension("rotate-tmp");
        {
            let mut f = File::create(&tmp)?;
            for r in live {
                f.write_all(r.to_line().as_bytes())?;
            }
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // The rename is only durable once the directory entry is; skip
        // it and a power cut can resurrect the pre-rotation journal.
        fsync_parent(&self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.bytes = self.file.metadata()?.len();
        Ok(true)
    }

    /// Force everything appended so far to stable storage.
    ///
    /// # Errors
    ///
    /// Any I/O error from the sync.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    /// Records appended through this handle (not counting replayed
    /// history).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Current journal size in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn scratch(name: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cimon-journal-{}-{}-{name}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("results.jsonl")
    }

    fn rec(key: u64, body: &str) -> Record {
        Record {
            key,
            tag: "row".to_string(),
            extra: String::new(),
            body: body.to_string(),
        }
    }

    /// Tests that append through the chaos bit-flip site and then
    /// assert exact on-disk contents skip under `CIMON_CHAOS=1` —
    /// `tests/chaos_recovery.rs` owns the chaos-mode journal story.
    fn chaos_mode() -> bool {
        chaos::enabled()
    }

    #[test]
    fn records_survive_reopen() {
        if chaos_mode() {
            return;
        }
        let path = scratch("reopen");
        let (mut j, replay) = Journal::open(&path).unwrap();
        assert!(replay.records.is_empty());
        j.append(&rec(1, "{\"cycles\":10}"), usize::MAX).unwrap();
        j.append(&rec(2, "{\"cycles\":20,\"w\":\"a,b}{\"}"), usize::MAX)
            .unwrap();
        j.sync().unwrap();
        drop(j);
        let (j2, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0], rec(1, "{\"cycles\":10}"));
        assert_eq!(replay.records[1].body, "{\"cycles\":20,\"w\":\"a,b}{\"}");
        assert_eq!(replay.corrupt_dropped, 0);
        assert!(!replay.torn_truncated);
        assert_eq!(j2.appended(), 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        if chaos_mode() {
            return;
        }
        let path = scratch("torn");
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(&rec(1, "{}"), usize::MAX).unwrap();
        drop(j);
        // Simulate a crash mid-append: half a record, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"crc\":\"dead").unwrap();
        drop(f);
        let (_, replay) = Journal::open(&path).unwrap();
        assert!(replay.torn_truncated);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.corrupt_dropped, 0);
        // The truncation is durable: a second open sees a clean file.
        let (_, replay) = Journal::open(&path).unwrap();
        assert!(!replay.torn_truncated);
        assert_eq!(replay.records.len(), 1);
    }

    #[test]
    fn corrupt_records_are_dropped_not_trusted() {
        if chaos_mode() {
            return;
        }
        let path = scratch("corrupt");
        let (mut j, _) = Journal::open(&path).unwrap();
        j.append(&rec(1, "{\"a\":1}"), usize::MAX).unwrap();
        j.append(&rec(2, "{\"a\":2}"), usize::MAX).unwrap();
        j.append(&rec(3, "{\"a\":3}"), usize::MAX).unwrap();
        drop(j);
        // Flip one payload bit of the middle line on disk.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_line = bytes.iter().position(|&b| b == b'\n').unwrap() + 10;
        bytes[second_line] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.corrupt_dropped, 1);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0].key, 1);
        assert_eq!(replay.records[1].key, 3);
    }

    #[test]
    fn rotation_compacts_atomically() {
        let path = scratch("rotate");
        let (mut j, _) = Journal::open(&path).unwrap();
        for i in 0..50 {
            j.append(&rec(i, "{\"a\":1}"), usize::MAX).unwrap();
        }
        let before = j.len_bytes();
        // Keep only two live records.
        let live = [rec(48, "{\"a\":1}"), rec(49, "{\"a\":1}")];
        assert!(j.rotate_if_needed(before - 1, &live).unwrap());
        assert!(j.len_bytes() < before);
        assert!(!path.with_extension("rotate-tmp").exists());
        drop(j);
        let (j2, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0].key, 48);
        // Below the threshold nothing rotates.
        let mut j2 = j2;
        assert!(!j2.rotate_if_needed(1 << 20, &live).unwrap());
    }

    #[test]
    fn crc_is_the_ieee_polynomial() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn zero_length_journal_opens_clean() {
        let path = scratch("zero");
        File::create(&path).unwrap();
        let (j, replay) = Journal::open(&path).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.corrupt_dropped, 0);
        assert!(!replay.torn_truncated);
        assert_eq!(j.len_bytes(), 0);
    }

    #[test]
    fn journal_that_is_only_a_torn_tail_truncates_to_empty() {
        if chaos_mode() {
            return;
        }
        let path = scratch("all-torn");
        // A crash during the very first append: a fragment, no newline
        // anywhere in the file.
        std::fs::write(&path, b"{\"crc\":\"0123abcd\",\"key\":\"00").unwrap();
        let (mut j, replay) = Journal::open(&path).unwrap();
        assert!(replay.torn_truncated);
        assert!(replay.records.is_empty());
        assert_eq!(replay.corrupt_dropped, 0);
        assert_eq!(j.len_bytes(), 0, "truncation leaves an empty file");
        // The file is immediately usable for fresh appends.
        j.append(&rec(5, "{\"a\":5}"), usize::MAX).unwrap();
        drop(j);
        let (_, replay) = Journal::open(&path).unwrap();
        assert!(!replay.torn_truncated);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].key, 5);
    }

    #[test]
    fn interleaved_request_records_replay_in_append_order() {
        if chaos_mode() {
            return;
        }
        // Two concurrent sweeps interleave their row records; replay
        // must keep global append order AND per-key order so each
        // request's contiguous-prefix scan sees its rows as written.
        let path = scratch("interleaved");
        let (mut j, _) = Journal::open(&path).unwrap();
        let mut expect = Vec::new();
        for i in 0..4u64 {
            for key in [0xAAAA, 0xBBBB] {
                let r = Record {
                    key,
                    tag: "sweep-row".to_string(),
                    extra: format!("{i}|00000000"),
                    body: format!("{{\"row\":{i}}}"),
                };
                j.append(&r, usize::MAX).unwrap();
                expect.push(r);
            }
        }
        drop(j);
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records, expect);
        for key in [0xAAAA, 0xBBBB] {
            let rows: Vec<&str> = replay
                .records
                .iter()
                .filter(|r| r.key == key)
                .map(|r| r.extra.split('|').next().unwrap())
                .collect();
            assert_eq!(rows, ["0", "1", "2", "3"], "key {key:x} rows out of order");
        }
    }
}
