//! # cimon-serve — a crash-safe, back-pressured simulation service
//!
//! The experiment engine (`cimon-sim`) answers one question per call;
//! this crate turns it into a long-running daemon that answers a
//! *stream* of questions without wedging, lying, or losing finished
//! work. Requests — workload × hash × IHT configuration, or a whole
//! fault campaign — arrive as line-delimited flat JSON over TCP
//! ([`net`]) or in process ([`Server::call`]), and are scheduled onto
//! worker threads that reuse the engine's [`cimon_sim::Artifact`]
//! caches across requests (one assembly, one FHT per (algo, seed), one
//! predecode per workload, for the lifetime of the process).
//!
//! The robustness contract, piece by piece:
//!
//! * **Bounded admission** — the queue holds at most
//!   [`ServeConfig::queue_capacity`] requests. A full queue sheds load
//!   with a typed [`cimon_core::SimError::Overloaded`] rejection that
//!   names the queue depth, instead of growing without bound or
//!   silently stalling the client.
//! * **Per-request deadlines** — `deadline_ms` flows into the
//!   processor's wall-clock watchdog
//!   ([`cimon_sim::SimConfig::max_wall`]), so a pathologically slow
//!   simulation comes back as a `timed-out` row while the worker moves
//!   on to the next request.
//! * **Retry with backoff** — transient failures
//!   ([`cimon_core::SimError::is_transient`]: worker panics, corrupt
//!   snapshots, I/O) are retried once after an exponential backoff;
//!   deterministic failures (`InvalidConfig`) are never retried.
//! * **Durable journaling** — every finished result is appended to a
//!   write-ahead JSONL journal ([`journal`]) with a per-record CRC and
//!   flushed before the response is sent. A killed and restarted
//!   server replays the journal (dropping a torn tail and any
//!   bit-flipped records) and serves completed work from it instead of
//!   re-simulating. Campaigns journal chunk by chunk, and sweeps
//!   journal *row by row* under an incremental CRC chain, so even a
//!   partially finished request resumes exactly where it stopped.
//! * **Streaming, resumable sweeps** — a `sweep` request streams one
//!   row frame per finished grid point through a *bounded* buffer
//!   ([`ServeConfig::stream_buffer`]); a consumer that stops reading
//!   sheds the stream (typed, counted) while the rows keep landing in
//!   the journal, and a cut client reconnects with a
//!   [`protocol::ResumeFrom`] cursor to receive only what it missed
//!   ([`client::Client::sweep`] automates this).
//! * **Graceful drain** — [`Server::drain`] stops admitting, lets
//!   in-flight work finish, flushes the journal, and reports what was
//!   completed and what was dropped.
//!
//! `CIMON_CHAOS=1` extends the self-chaos harness into this layer:
//! requests are corrupted at ingest, journal records are bit-flipped
//! before hitting disk, and workers panic mid-request — and the
//! integration suite proves a chaos-killed-and-restarted server
//! produces the same result set as an uninterrupted one (see
//! `docs/serve.md`).

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::time::Duration;

pub mod backoff;
pub mod client;
pub mod journal;
pub mod net;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientConfig};
pub use journal::{Journal, Record, Replay};
pub use protocol::{CampaignSpec, Request, RequestBody, Response, ResumeFrom, RunSpec, SweepSpec};
pub use server::{DrainReport, MetricsSnapshot, Server};

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bounded admission queue depth; a request arriving when the
    /// queue holds this many is rejected with
    /// [`cimon_core::SimError::Overloaded`].
    pub queue_capacity: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Engine pool width each campaign chunk runs with.
    pub engine_workers: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Plans per journaled campaign chunk — the granularity at which a
    /// killed campaign resumes.
    pub campaign_chunk: usize,
    /// Base backoff before the retry of a transient failure (the
    /// second attempt waits twice this, were more retries configured).
    pub retry_backoff: Duration,
    /// Seed mixed with the request key for the retry backoff's
    /// deterministic jitter ([`backoff::jittered`]).
    pub retry_jitter_seed: u64,
    /// Journal size that triggers a compacting rotation.
    pub journal_rotate_bytes: u64,
    /// Bounded per-stream response buffer, in frames: how far a sweep
    /// may run ahead of a slow consumer before back-pressure stalls the
    /// worker.
    pub stream_buffer: usize,
    /// How long a stream send may stay stalled on a full buffer before
    /// the stream is shed (the work continues and journals; only the
    /// delivery stops).
    pub stream_stall: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 16,
            workers: 2,
            engine_workers: cimon_sim::engine::default_workers(),
            default_deadline: None,
            campaign_chunk: 25,
            retry_backoff: Duration::from_millis(10),
            retry_jitter_seed: 0x005E_ED0F_5E4E,
            journal_rotate_bytes: 4 << 20,
            stream_buffer: 8,
            stream_stall: Duration::from_millis(500),
        }
    }
}
