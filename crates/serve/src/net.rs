//! The TCP front: line-delimited flat-JSON requests in, one response
//! line per request out — except sweeps, which stream one `sweep-row`
//! line per finished row and a terminal `sweep-done` line.
//!
//! The accept loop polls a non-blocking listener so it can notice a
//! drain or kill and stop accepting; each connection gets its own
//! thread that reads request lines, runs them through the chaos
//! request-corruption site (`CIMON_CHAOS=1`), and answers every line —
//! malformed input gets a typed `protocol` error response rather than a
//! dropped connection. Streamed frames additionally pass the
//! `serve-stream` chaos cut site: a seeded cut closes the connection
//! mid-stream, which is exactly the failure
//! [`crate::client::Client::sweep`] must survive by reconnecting with a
//! resume cursor.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cimon_core::SimError;
use cimon_sim::chaos;

use crate::protocol::{self, Response};
use crate::server::Server;

/// How often the accept loop re-checks the server state while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Accept connections on `listener` until the server stops running.
/// Returns the accept-loop thread handle; connection threads are
/// detached and exit when their peer hangs up.
///
/// # Errors
///
/// [`SimError::Io`] when the listener cannot be made non-blocking.
pub fn serve(server: Arc<Server>, listener: TcpListener) -> Result<JoinHandle<()>, SimError> {
    listener.set_nonblocking(true).map_err(|e| SimError::Io {
        message: format!("listener setup failed: {e}"),
    })?;
    Ok(std::thread::spawn(move || accept_loop(&server, &listener)))
}

fn accept_loop(server: &Arc<Server>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let server = server.clone();
                std::thread::spawn(move || connection(&server, stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if !server.is_running() {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => return,
        }
    }
}

/// Serve one connection until EOF or a write failure.
fn connection(server: &Arc<Server>, stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    // One request line, one response line: Nagle only adds latency.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        // The wire-level chaos site: each received request line gets a
        // deterministic corruption roll before parsing, so the suite
        // can prove corrupt input yields typed protocol errors.
        let wire_index = server.next_wire_index();
        let mut bytes = line.trim_end_matches(['\r', '\n']).as_bytes().to_vec();
        chaos::maybe_corrupt_request(wire_index, &mut bytes);
        let text = String::from_utf8_lossy(&bytes);
        let response = match protocol::parse_request(&text) {
            Ok(req) => {
                if matches!(req.body, protocol::RequestBody::Sweep(_)) {
                    if !stream_sweep(server, &mut writer, req) {
                        return;
                    }
                    continue;
                }
                server.call(req)
            }
            Err(error) => {
                server.count_protocol_error();
                Response::Error { id: 0, error }
            }
        };
        if !write_frame(&mut writer, &response) {
            return;
        }
    }
}

/// Write one response line; `false` ends the connection.
fn write_frame(writer: &mut TcpStream, response: &Response) -> bool {
    let reply = protocol::response_to_line(response);
    if writer.write_all(reply.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
        return false;
    }
    writer.flush().is_ok()
}

/// Stream a sweep's frames over the connection. Returns whether the
/// connection is still good for further requests (a terminal frame
/// went out); a chaos-injected stream cut or a closed response channel
/// drops the connection instead, handing recovery to the client's
/// reconnect-and-resume path.
fn stream_sweep(server: &Arc<Server>, writer: &mut TcpStream, req: protocol::Request) -> bool {
    let id = req.id;
    let rx = server.submit_stream(req);
    loop {
        let Ok(frame) = rx.recv() else {
            // The channel closed without a terminal frame: the server
            // shed the stream (or was killed). Tell the client in a
            // typed way if the socket still works, then cut.
            let _ = write_frame(
                writer,
                &Response::Error {
                    id,
                    error: SimError::Overloaded {
                        queued: 0,
                        capacity: 0,
                    },
                },
            );
            return false;
        };
        let terminal = !matches!(frame, Response::SweepRow { .. });
        // The stream-cut chaos site: a seeded per-frame roll severs the
        // connection *before* the frame is written, simulating a peer
        // or network failure mid-stream.
        let stream_index = server.next_stream_index();
        if chaos::cuts_stream_at(stream_index) {
            return false;
        }
        if !write_frame(writer, &frame) {
            return false;
        }
        if terminal {
            return true;
        }
    }
}
