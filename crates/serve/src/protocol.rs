//! The wire protocol: line-delimited flat JSON objects.
//!
//! One request per line, one response line per request, over any
//! byte stream (the TCP layer in [`crate::net`], or a test harness
//! calling [`parse_request`] directly). Objects are *flat* — the
//! shared scanner in [`cimon_bench::json`] rejects nesting — so a
//! response embeds its result row or campaign counters as additional
//! top-level fields next to `id` and `status` rather than as a
//! sub-object.
//!
//! Malformed input never panics and never wedges a connection: every
//! parse failure is a typed [`SimError::Protocol`] carrying the reason,
//! which the server turns into a `status:"error"` response.

use cimon_bench::json::{self, FlatObject};
use cimon_bench::report;
use cimon_core::{HashAlgoKind, SimError};
use cimon_faults::{BusFaultMode, CampaignResult, FaultModel, FaultSite};
use cimon_os::RefillPolicyKind;
use cimon_sim::engine::ResultRow;

use crate::server::{DrainReport, MetricsSnapshot};

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Wall-clock budget for the request; `None` uses the server's
    /// default.
    pub deadline_ms: Option<u64>,
    /// Resume cursor for a reconnecting sweep client: rows up to and
    /// including `last_acked_row` are not re-streamed. Excluded from
    /// [`Request::key`] — resuming is how the *same* work is asked for,
    /// not different work.
    pub resume: Option<ResumeFrom>,
    /// What to do.
    pub body: RequestBody,
}

/// Where a cut sweep stream picks up again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResumeFrom {
    /// The request key ([`Request::key`]) of the stream being resumed;
    /// the server rejects a mismatch with a typed
    /// [`SimError::ResumeMismatch`].
    pub key: u64,
    /// Index of the last row the client durably received.
    pub last_acked_row: u64,
}

/// The request kinds the service understands.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestBody {
    /// Run one experiment and return its result row.
    Run(RunSpec),
    /// Run a grid of experiments, streaming one `sweep-row` frame per
    /// finished row and a terminal `sweep-done` frame.
    Sweep(SweepSpec),
    /// Run a fault campaign and return its aggregated counters.
    Campaign(CampaignSpec),
    /// Return the server's metrics counters.
    Metrics,
    /// Stop admitting, finish in-flight work, flush the journal and
    /// report what happened.
    Drain,
}

/// One experiment: a workload under one monitor configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSpec {
    /// Registry workload name.
    pub workload: String,
    /// Monitored (CIC) or baseline run.
    pub monitored: bool,
    /// IHT entries.
    pub iht_entries: usize,
    /// Hash algorithm.
    pub hash_algo: HashAlgoKind,
    /// Seed for the seeded-XOR variant.
    pub hash_seed: u32,
    /// OS refill policy.
    pub policy: RefillPolicyKind,
}

/// A grid of experiments over one workload, streamed back row by row.
///
/// Row order is fixed so a resumed stream and its oracle agree on
/// indices: the optional baseline row first (unmonitored, using the
/// first entries/algo of the grid), then one monitored row per
/// `(hash_algo, iht_entries)` pair in declaration order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepSpec {
    /// Registry workload name.
    pub workload: String,
    /// IHT sizes swept.
    pub iht_entries: Vec<usize>,
    /// Hash algorithms swept.
    pub hash_algos: Vec<HashAlgoKind>,
    /// Seed for the seeded-XOR variant.
    pub hash_seed: u32,
    /// OS refill policy.
    pub policy: RefillPolicyKind,
    /// Whether an unmonitored baseline row leads the grid.
    pub baseline: bool,
}

impl SweepSpec {
    /// Total rows this sweep produces.
    pub fn rows(&self) -> u64 {
        u64::from(self.baseline) + (self.hash_algos.len() * self.iht_entries.len()) as u64
    }
}

/// One fault campaign over a workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Registry workload name.
    pub workload: String,
    /// IHT entries of the monitored configuration under attack.
    pub iht_entries: usize,
    /// Hash algorithm of the monitor.
    pub hash_algo: HashAlgoKind,
    /// Hash seed of the monitor.
    pub hash_seed: u32,
    /// Faulted runs to execute.
    pub runs: usize,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Fault model.
    pub model: FaultModel,
    /// Injection site.
    pub site: FaultSite,
    /// Cycle budget per faulted run.
    pub max_cycles: u64,
}

/// One server response.
#[derive(Debug, PartialEq)]
pub enum Response {
    /// A finished experiment.
    Row {
        /// Echoed request id.
        id: u64,
        /// The result row (clean, timed out, or failed — all typed).
        row: ResultRow,
        /// Whether the result was served from the journal instead of
        /// simulated in this process lifetime.
        replayed: bool,
    },
    /// One streamed sweep row; `sweep-done` terminates the stream.
    SweepRow {
        /// Echoed request id.
        id: u64,
        /// Position of this row in the sweep's fixed row order.
        row_index: u64,
        /// The result row.
        row: ResultRow,
        /// Whether the row was served from the journal instead of
        /// simulated in this process lifetime.
        replayed: bool,
    },
    /// Terminal frame of a sweep stream: every row at or past the
    /// resume cursor has been sent.
    SweepDone {
        /// Echoed request id.
        id: u64,
        /// Total rows in the sweep (streamed plus skipped-by-resume).
        row_count: u64,
        /// First row index this stream actually sent (0 for a fresh
        /// request, `last_acked_row + 1` for a resumed one).
        resumed_from: u64,
    },
    /// A finished campaign.
    Campaign {
        /// Echoed request id.
        id: u64,
        /// Merged counters over every chunk.
        result: CampaignResult,
        /// Whether every chunk was served from the journal.
        replayed: bool,
    },
    /// The request was rejected or failed; the error is typed so the
    /// client can distinguish shed load (`overloaded`, `draining`)
    /// from bad requests (`invalid-config`, `protocol`) and transient
    /// faults.
    Error {
        /// Echoed request id (0 when the id itself did not parse).
        id: u64,
        /// Why.
        error: SimError,
    },
    /// Metrics snapshot.
    Metrics {
        /// Echoed request id.
        id: u64,
        /// Counter values at the time of the request.
        metrics: MetricsSnapshot,
    },
    /// Drain acknowledgement.
    Drained {
        /// Echoed request id.
        id: u64,
        /// What the drain completed and dropped.
        report: DrainReport,
    },
}

impl Response {
    /// The echoed request id, whatever the variant.
    pub fn id(&self) -> u64 {
        match self {
            Response::Row { id, .. }
            | Response::SweepRow { id, .. }
            | Response::SweepDone { id, .. }
            | Response::Campaign { id, .. }
            | Response::Error { id, .. }
            | Response::Metrics { id, .. }
            | Response::Drained { id, .. } => *id,
        }
    }
}

fn proto_err(message: impl Into<String>) -> SimError {
    SimError::Protocol {
        message: message.into(),
    }
}

fn algo_from_name(name: &str) -> Result<HashAlgoKind, SimError> {
    HashAlgoKind::ALL
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| proto_err(format!("unknown hash algorithm `{name}`")))
}

fn policy_from_name(name: &str, seed: u64) -> Result<RefillPolicyKind, SimError> {
    RefillPolicyKind::all(seed)
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| proto_err(format!("unknown policy `{name}`")))
}

fn model_fields(model: &FaultModel) -> (&'static str, usize) {
    match model {
        FaultModel::SingleBit => ("single-bit", 0),
        FaultModel::MultiBit { n } => ("multi-bit", *n),
        FaultModel::SameColumnPair => ("same-column-pair", 0),
    }
}

fn model_from_fields(name: &str, flips: usize) -> Result<FaultModel, SimError> {
    match name {
        "single-bit" => Ok(FaultModel::SingleBit),
        "multi-bit" if flips > 0 => Ok(FaultModel::MultiBit { n: flips }),
        "multi-bit" => Err(proto_err("multi-bit model needs `flips` >= 1")),
        "same-column-pair" => Ok(FaultModel::SameColumnPair),
        other => Err(proto_err(format!("unknown fault model `{other}`"))),
    }
}

fn site_name(site: &FaultSite) -> &'static str {
    match site {
        FaultSite::StoredImage => "stored-image",
        FaultSite::FetchBus(BusFaultMode::OneShot) => "bus-one-shot",
        FaultSite::FetchBus(BusFaultMode::StuckAt) => "bus-stuck-at",
    }
}

fn site_from_name(name: &str) -> Result<FaultSite, SimError> {
    match name {
        "stored-image" => Ok(FaultSite::StoredImage),
        "bus-one-shot" => Ok(FaultSite::FetchBus(BusFaultMode::OneShot)),
        "bus-stuck-at" => Ok(FaultSite::FetchBus(BusFaultMode::StuckAt)),
        other => Err(proto_err(format!("unknown fault site `{other}`"))),
    }
}

// The flat-JSON scanner rejects nested arrays, so sweep lists travel as
// comma-separated strings (`"iht_entries":"1,8,16"`).

fn csv<T: ToString>(xs: &[T]) -> String {
    xs.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn entries_from_csv(field: &str, s: &str) -> Result<Vec<usize>, SimError> {
    let out: Vec<usize> = s
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| proto_err(format!("bad number `{p}` in `{field}`")))
        })
        .collect::<Result<_, _>>()?;
    if out.is_empty() {
        return Err(proto_err(format!("`{field}` needs at least one value")));
    }
    Ok(out)
}

fn algos_from_csv(s: &str) -> Result<Vec<HashAlgoKind>, SimError> {
    let out: Vec<HashAlgoKind> = s
        .split(',')
        .filter(|p| !p.is_empty())
        .map(|p| algo_from_name(p.trim()))
        .collect::<Result<_, _>>()?;
    if out.is_empty() {
        return Err(proto_err("`hash_algos` needs at least one value"));
    }
    Ok(out)
}

impl Request {
    /// Serialise this request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = format!("{{\"id\":{}", self.id);
        if let Some(ms) = self.deadline_ms {
            out.push_str(&format!(",\"deadline_ms\":{ms}"));
        }
        if let Some(resume) = &self.resume {
            out.push_str(&format!(
                ",\"resume_key\":\"{:016x}\",\"resume_row\":{}",
                resume.key, resume.last_acked_row,
            ));
        }
        match &self.body {
            RequestBody::Run(s) => {
                out.push_str(&format!(
                    ",\"kind\":\"run\",\"workload\":\"{}\",\"monitored\":{},\
                     \"iht_entries\":{},\"hash_algo\":\"{}\",\"hash_seed\":{},\
                     \"policy\":\"{}\"",
                    json::escape(&s.workload),
                    s.monitored,
                    s.iht_entries,
                    s.hash_algo.name(),
                    s.hash_seed,
                    s.policy.name(),
                ));
            }
            RequestBody::Sweep(s) => {
                out.push_str(&format!(
                    ",\"kind\":\"sweep\",\"workload\":\"{}\",\"iht_entries\":\"{}\",\
                     \"hash_algos\":\"{}\",\"hash_seed\":{},\"policy\":\"{}\",\
                     \"baseline\":{}",
                    json::escape(&s.workload),
                    csv(&s.iht_entries),
                    csv(&s.hash_algos.iter().map(|a| a.name()).collect::<Vec<_>>()),
                    s.hash_seed,
                    s.policy.name(),
                    s.baseline,
                ));
            }
            RequestBody::Campaign(s) => {
                let (model, flips) = model_fields(&s.model);
                out.push_str(&format!(
                    ",\"kind\":\"campaign\",\"workload\":\"{}\",\"iht_entries\":{},\
                     \"hash_algo\":\"{}\",\"hash_seed\":{},\"runs\":{},\"seed\":{},\
                     \"model\":\"{}\",\"flips\":{},\"site\":\"{}\",\"max_cycles\":{}",
                    json::escape(&s.workload),
                    s.iht_entries,
                    s.hash_algo.name(),
                    s.hash_seed,
                    s.runs,
                    s.seed,
                    model,
                    flips,
                    site_name(&s.site),
                    s.max_cycles,
                ));
            }
            RequestBody::Metrics => out.push_str(",\"kind\":\"metrics\""),
            RequestBody::Drain => out.push_str(",\"kind\":\"drain\""),
        }
        out.push('}');
        out
    }

    /// The request's identity for journaling and deduplication: a
    /// stable 64-bit FNV-1a hash over the canonical serialisation of
    /// the *work* (id and deadline excluded — the same experiment asked
    /// twice is the same work).
    pub fn key(&self) -> u64 {
        let canonical = Request {
            id: 0,
            deadline_ms: None,
            resume: None,
            body: self.body.clone(),
        }
        .to_line();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in canonical.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Parse one wire line into a request.
///
/// # Errors
///
/// [`SimError::Protocol`] describing the first problem; the line never
/// panics the parser, whatever bytes it contains.
pub fn parse_request(line: &str) -> Result<Request, SimError> {
    let bodies = json::objects(line).map_err(proto_err)?;
    let body = match bodies.as_slice() {
        [one] => one,
        other => {
            return Err(proto_err(format!(
                "expected one request object per line, found {}",
                other.len()
            )))
        }
    };
    let obj = FlatObject::parse(body).map_err(proto_err)?;
    let id: u64 = obj.num("id").map_err(proto_err)?;
    let deadline_ms: Option<u64> = obj.opt_num("deadline_ms").map_err(proto_err)?;
    let resume = if obj.has("resume_key") {
        let hex = obj.str("resume_key").map_err(proto_err)?;
        let key = u64::from_str_radix(&hex, 16)
            .map_err(|_| proto_err(format!("bad `resume_key` hex `{hex}`")))?;
        Some(ResumeFrom {
            key,
            last_acked_row: obj.num("resume_row").map_err(proto_err)?,
        })
    } else {
        None
    };
    let kind = obj.str("kind").map_err(proto_err)?;
    let body = match kind.as_str() {
        "run" => RequestBody::Run(RunSpec {
            workload: obj.str("workload").map_err(proto_err)?,
            monitored: if obj.has("monitored") {
                obj.bool("monitored").map_err(proto_err)?
            } else {
                true
            },
            iht_entries: obj.num("iht_entries").map_err(proto_err)?,
            hash_algo: algo_from_name(&obj.str("hash_algo").map_err(proto_err)?)?,
            hash_seed: obj.opt_num("hash_seed").map_err(proto_err)?.unwrap_or(0),
            policy: policy_from_name(
                &obj.str("policy")
                    .unwrap_or_else(|_| "replace-half-lru".to_string()),
                0,
            )?,
        }),
        "sweep" => RequestBody::Sweep(SweepSpec {
            workload: obj.str("workload").map_err(proto_err)?,
            iht_entries: entries_from_csv(
                "iht_entries",
                &obj.str("iht_entries").map_err(proto_err)?,
            )?,
            hash_algos: algos_from_csv(&obj.str("hash_algos").map_err(proto_err)?)?,
            hash_seed: obj.opt_num("hash_seed").map_err(proto_err)?.unwrap_or(0),
            policy: policy_from_name(
                &obj.str("policy")
                    .unwrap_or_else(|_| "replace-half-lru".to_string()),
                0,
            )?,
            baseline: if obj.has("baseline") {
                obj.bool("baseline").map_err(proto_err)?
            } else {
                true
            },
        }),
        "campaign" => RequestBody::Campaign(CampaignSpec {
            workload: obj.str("workload").map_err(proto_err)?,
            iht_entries: obj.num("iht_entries").map_err(proto_err)?,
            hash_algo: algo_from_name(&obj.str("hash_algo").map_err(proto_err)?)?,
            hash_seed: obj.opt_num("hash_seed").map_err(proto_err)?.unwrap_or(0),
            runs: obj.num("runs").map_err(proto_err)?,
            seed: obj.num("seed").map_err(proto_err)?,
            model: model_from_fields(
                &obj.str("model").map_err(proto_err)?,
                obj.opt_num("flips").map_err(proto_err)?.unwrap_or(0),
            )?,
            site: site_from_name(&obj.str("site").map_err(proto_err)?)?,
            max_cycles: obj.num("max_cycles").map_err(proto_err)?,
        }),
        "metrics" => RequestBody::Metrics,
        "drain" => RequestBody::Drain,
        other => return Err(proto_err(format!("unknown request kind `{other}`"))),
    };
    Ok(Request {
        id,
        deadline_ms,
        resume,
        body,
    })
}

/// The object *body* (braces stripped) of a single-object document.
fn sole_body(doc: &str) -> Result<&str, String> {
    match json::objects(doc)?.as_slice() {
        [one] => Ok(one),
        other => Err(format!("expected one object, found {}", other.len())),
    }
}

/// Serialise a response as one wire line (no trailing newline).
pub fn response_to_line(resp: &Response) -> String {
    match resp {
        Response::Row { id, row, replayed } => {
            let doc = report::to_json(std::slice::from_ref(row));
            let body = sole_body(&doc).unwrap_or_default();
            format!("{{\"id\":{id},\"status\":\"row\",\"replayed\":{replayed},{body}}}")
        }
        Response::SweepRow {
            id,
            row_index,
            row,
            replayed,
        } => {
            let doc = report::to_json(std::slice::from_ref(row));
            let body = sole_body(&doc).unwrap_or_default();
            format!(
                "{{\"id\":{id},\"status\":\"sweep-row\",\"row_index\":{row_index},\
                 \"replayed\":{replayed},{body}}}"
            )
        }
        Response::SweepDone {
            id,
            row_count,
            resumed_from,
        } => format!(
            "{{\"id\":{id},\"status\":\"sweep-done\",\"row_count\":{row_count},\
             \"resumed_from\":{resumed_from}}}"
        ),
        Response::Campaign {
            id,
            result,
            replayed,
        } => {
            let doc = report::campaign_to_json(result);
            let body = sole_body(&doc).unwrap_or_default();
            format!("{{\"id\":{id},\"status\":\"campaign\",\"replayed\":{replayed},{body}}}")
        }
        Response::Error { id, error } => format!(
            "{{\"id\":{id},\"status\":\"error\",\"kind\":\"{}\",\"error\":\"{}\"}}",
            error.kind(),
            json::escape(&error.to_string()),
        ),
        Response::Metrics { id, metrics } => format!(
            "{{\"id\":{id},\"status\":\"metrics\",{}}}",
            metrics.json_fields()
        ),
        Response::Drained { id, report } => format!(
            "{{\"id\":{id},\"status\":\"drained\",\"completed\":{},\"dropped\":{},\
             \"rejected\":{}}}",
            report.completed, report.dropped, report.rejected,
        ),
    }
}

/// Parse one response line back into its typed form (the client half
/// of [`response_to_line`]).
///
/// # Errors
///
/// [`SimError::Protocol`] when the line is not a well-formed response.
pub fn parse_response(line: &str) -> Result<Response, SimError> {
    let body = sole_body(line).map_err(proto_err)?;
    let obj = FlatObject::parse(body).map_err(proto_err)?;
    let id: u64 = obj.num("id").map_err(proto_err)?;
    let status = obj.str("status").map_err(proto_err)?;
    match status.as_str() {
        "row" => {
            let rows = report::rows_from_json(line).map_err(proto_err)?;
            let row = rows
                .into_iter()
                .next()
                .ok_or_else(|| proto_err("row response without a row"))?;
            Ok(Response::Row {
                id,
                row,
                replayed: obj.bool("replayed").map_err(proto_err)?,
            })
        }
        "sweep-row" => {
            let rows = report::rows_from_json(line).map_err(proto_err)?;
            let row = rows
                .into_iter()
                .next()
                .ok_or_else(|| proto_err("sweep-row response without a row"))?;
            Ok(Response::SweepRow {
                id,
                row_index: obj.num("row_index").map_err(proto_err)?,
                row,
                replayed: obj.bool("replayed").map_err(proto_err)?,
            })
        }
        "sweep-done" => Ok(Response::SweepDone {
            id,
            row_count: obj.num("row_count").map_err(proto_err)?,
            resumed_from: obj.num("resumed_from").map_err(proto_err)?,
        }),
        "campaign" => Ok(Response::Campaign {
            id,
            result: report::campaign_from_json(line).map_err(proto_err)?,
            replayed: obj.bool("replayed").map_err(proto_err)?,
        }),
        "error" => {
            let kind = obj.str("kind").map_err(proto_err)?;
            let rendered = obj.str("error").map_err(proto_err)?;
            let error = SimError::from_wire(&kind, &rendered)
                .ok_or_else(|| proto_err(format!("unreconstructable error of kind `{kind}`")))?;
            Ok(Response::Error { id, error })
        }
        "metrics" => Ok(Response::Metrics {
            id,
            metrics: MetricsSnapshot::from_flat(&obj).map_err(proto_err)?,
        }),
        "drained" => Ok(Response::Drained {
            id,
            report: DrainReport {
                completed: obj.num("completed").map_err(proto_err)?,
                dropped: obj.num("dropped").map_err(proto_err)?,
                rejected: obj.num("rejected").map_err(proto_err)?,
            },
        }),
        other => Err(proto_err(format!("unknown response status `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_request() -> Request {
        Request {
            id: 7,
            deadline_ms: Some(2000),
            resume: None,
            body: RequestBody::Run(RunSpec {
                workload: "sha".to_string(),
                monitored: true,
                iht_entries: 8,
                hash_algo: HashAlgoKind::Crc32,
                hash_seed: 5,
                policy: RefillPolicyKind::Fifo,
            }),
        }
    }

    fn sweep_request() -> Request {
        Request {
            id: 11,
            deadline_ms: None,
            resume: None,
            body: RequestBody::Sweep(SweepSpec {
                workload: "bitcount".to_string(),
                iht_entries: vec![1, 8, 16],
                hash_algos: vec![HashAlgoKind::Xor, HashAlgoKind::Crc32],
                hash_seed: 3,
                policy: RefillPolicyKind::Fifo,
                baseline: true,
            }),
        }
    }

    fn campaign_request() -> Request {
        Request {
            id: 9,
            deadline_ms: None,
            resume: None,
            body: RequestBody::Campaign(CampaignSpec {
                workload: "crc".to_string(),
                iht_entries: 8,
                hash_algo: HashAlgoKind::Xor,
                hash_seed: 0,
                runs: 100,
                seed: 42,
                model: FaultModel::MultiBit { n: 3 },
                site: FaultSite::FetchBus(BusFaultMode::StuckAt),
                max_cycles: 60_000,
            }),
        }
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            run_request(),
            sweep_request(),
            campaign_request(),
            Request {
                id: 1,
                deadline_ms: None,
                resume: None,
                body: RequestBody::Metrics,
            },
            Request {
                id: 2,
                deadline_ms: None,
                resume: None,
                body: RequestBody::Drain,
            },
            Request {
                resume: Some(ResumeFrom {
                    key: 0xdead_beef_cafe_f00d,
                    last_acked_row: 4,
                }),
                ..sweep_request()
            },
        ] {
            let line = req.to_line();
            assert_eq!(parse_request(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn sweep_row_count_covers_baseline_and_grid() {
        let RequestBody::Sweep(spec) = sweep_request().body else {
            unreachable!()
        };
        assert_eq!(spec.rows(), 1 + 2 * 3);
        let headless = SweepSpec {
            baseline: false,
            ..spec
        };
        assert_eq!(headless.rows(), 6);
    }

    #[test]
    fn resume_cursor_is_not_part_of_the_request_key() {
        let fresh = sweep_request();
        let resumed = Request {
            resume: Some(ResumeFrom {
                key: fresh.key(),
                last_acked_row: 2,
            }),
            ..fresh.clone()
        };
        assert_eq!(
            fresh.key(),
            resumed.key(),
            "resuming asks for the same work"
        );
    }

    #[test]
    fn empty_sweep_lists_are_typed_protocol_errors() {
        for bad in [
            "{\"id\":1,\"kind\":\"sweep\",\"workload\":\"sha\",\"iht_entries\":\"\",\
             \"hash_algos\":\"xor\"}",
            "{\"id\":1,\"kind\":\"sweep\",\"workload\":\"sha\",\"iht_entries\":\"8\",\
             \"hash_algos\":\"\"}",
            "{\"id\":1,\"kind\":\"sweep\",\"workload\":\"sha\",\"iht_entries\":\"8,x\",\
             \"hash_algos\":\"xor\"}",
            "{\"id\":1,\"resume_key\":\"zz\",\"resume_row\":0,\"kind\":\"metrics\"}",
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.kind(), "protocol", "input: {bad:?} gave {err}");
        }
    }

    #[test]
    fn sweep_done_responses_round_trip() {
        let resp = Response::SweepDone {
            id: 12,
            row_count: 7,
            resumed_from: 3,
        };
        let line = response_to_line(&resp);
        assert_eq!(parse_response(&line).unwrap(), resp);
    }

    #[test]
    fn request_keys_identify_the_work_not_the_envelope() {
        let a = run_request();
        let mut b = a.clone();
        b.id = 999;
        b.deadline_ms = None;
        assert_eq!(a.key(), b.key(), "id and deadline are not identity");
        let mut c = a.clone();
        if let RequestBody::Run(spec) = &mut c.body {
            spec.hash_seed = 6;
        }
        assert_ne!(a.key(), c.key(), "the work itself is");
    }

    #[test]
    fn malformed_requests_are_typed_protocol_errors() {
        for bad in [
            "",
            "\u{1}garbage",
            "{\"id\":1}",
            "{\"id\":1,\"kind\":\"warp\"}",
            "{\"id\":1,\"kind\":\"run\",\"workload\":\"sha\",\"iht_entries\":8,\
             \"hash_algo\":\"md5\"}",
            "{\"id\":1,\"kind\":\"campaign\",\"workload\":\"sha\",\"iht_entries\":8,\
             \"hash_algo\":\"xor\",\"runs\":1,\"seed\":1,\"model\":\"multi-bit\",\
             \"site\":\"stored-image\",\"max_cycles\":10}",
            "{\"id\":1},{\"id\":2}",
        ] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.kind(), "protocol", "input: {bad:?} gave {err}");
        }
    }

    #[test]
    fn error_responses_round_trip_their_typed_error() {
        let resp = Response::Error {
            id: 3,
            error: SimError::Overloaded {
                queued: 16,
                capacity: 16,
            },
        };
        let line = response_to_line(&resp);
        assert_eq!(parse_response(&line).unwrap(), resp);
        let resp = Response::Error {
            id: 0,
            error: proto_err("bad line"),
        };
        let line = response_to_line(&resp);
        assert_eq!(parse_response(&line).unwrap(), resp);
    }

    #[test]
    fn drain_responses_round_trip() {
        let resp = Response::Drained {
            id: 4,
            report: DrainReport {
                completed: 10,
                dropped: 2,
                rejected: 3,
            },
        };
        let line = response_to_line(&resp);
        assert_eq!(parse_response(&line).unwrap(), resp);
    }
}
