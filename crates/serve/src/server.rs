//! The service core: bounded admission, worker scheduling, retry,
//! journaling, drain and kill.
//!
//! Lifecycle: [`Server::start`] replays the journal (if any) and
//! spawns the worker pool; requests enter through [`Server::call`] /
//! [`Server::submit`] (or the TCP front in [`crate::net`]); the
//! process ends either through [`Server::drain`] — stop admitting,
//! finish in-flight work, flush the journal, report — or through
//! [`Server::kill`], which abandons everything not yet journaled and
//! exists so the crash-recovery suite can simulate a SIGKILL without
//! spawning processes.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cimon_bench::json::FlatObject;
use cimon_bench::report;
use cimon_core::{CicConfig, HashAlgoKind, SimError};
use cimon_faults::{Campaign, CampaignConfig, CampaignResult};
use cimon_sim::engine::{parallel_map_isolated, Artifact, Experiment, ResultRow};
use cimon_sim::{chaos, ckpt, SimConfig};

use crate::backoff;
use crate::journal::{Journal, Record};
use crate::protocol::{CampaignSpec, Request, RequestBody, Response, RunSpec, SweepSpec};
use crate::ServeConfig;

/// Chaos indices per admitted request: attempt `a` of request `n`
/// rolls site `"serve"` at `n * ATTEMPT_SPAN + a`, so a retry rolls a
/// *different* seeded point than the attempt that failed (and can
/// therefore heal), while staying deterministic across runs.
const ATTEMPT_SPAN: usize = 4;

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const KILLED: u8 = 2;

/// What a drain completed and what it shed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests answered over the server's lifetime (journal replays
    /// included).
    pub completed: u64,
    /// Queued requests abandoned (only a [`Server::kill`] drops work;
    /// a drain finishes the queue first).
    pub dropped: u64,
    /// Requests rejected while draining or overloaded.
    pub rejected: u64,
}

/// Monotonic service counters.
#[derive(Default)]
struct Metrics {
    admitted: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_draining: AtomicU64,
    protocol_errors: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    retried: AtomicU64,
    replayed: AtomicU64,
    dropped: AtomicU64,
    journal_corrupt_dropped: AtomicU64,
    journal_torn: AtomicU64,
    rows_streamed: AtomicU64,
    rows_replayed: AtomicU64,
    streams_shed: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests shed because the queue was full.
    pub rejected_overload: u64,
    /// Requests refused because the server was draining.
    pub rejected_draining: u64,
    /// Lines that failed to parse as requests.
    pub protocol_errors: u64,
    /// Requests answered successfully (rows, campaigns, replays).
    pub completed: u64,
    /// Requests that ended in a typed error response.
    pub failed: u64,
    /// Transient-failure retries performed.
    pub retried: u64,
    /// Results served from the journal instead of simulated.
    pub replayed: u64,
    /// Queued requests abandoned by a kill.
    pub dropped: u64,
    /// Journal records dropped on replay for CRC or syntax damage.
    pub journal_corrupt_dropped: u64,
    /// Whether startup truncated a torn journal tail (0 or 1).
    pub journal_torn: u64,
    /// Sweep row frames actually streamed to a client.
    pub rows_streamed: u64,
    /// Sweep rows served from the durable row journal instead of
    /// simulated in this process lifetime.
    pub rows_replayed: u64,
    /// Sweep streams abandoned for back-pressure: the client stopped
    /// consuming past the bounded buffer's stall budget.
    pub streams_shed: u64,
}

impl MetricsSnapshot {
    /// The snapshot's wire fields (no surrounding braces).
    pub fn json_fields(&self) -> String {
        format!(
            "\"admitted\":{},\"rejected_overload\":{},\"rejected_draining\":{},\
             \"protocol_errors\":{},\"completed\":{},\"failed\":{},\"retried\":{},\
             \"replayed\":{},\"dropped\":{},\"journal_corrupt_dropped\":{},\
             \"journal_torn\":{},\"rows_streamed\":{},\"rows_replayed\":{},\
             \"streams_shed\":{}",
            self.admitted,
            self.rejected_overload,
            self.rejected_draining,
            self.protocol_errors,
            self.completed,
            self.failed,
            self.retried,
            self.replayed,
            self.dropped,
            self.journal_corrupt_dropped,
            self.journal_torn,
            self.rows_streamed,
            self.rows_replayed,
            self.streams_shed,
        )
    }

    /// Rebuild a snapshot from a parsed wire object.
    ///
    /// # Errors
    ///
    /// The first missing or malformed counter.
    pub fn from_flat(obj: &FlatObject<'_>) -> Result<MetricsSnapshot, String> {
        Ok(MetricsSnapshot {
            admitted: obj.num("admitted")?,
            rejected_overload: obj.num("rejected_overload")?,
            rejected_draining: obj.num("rejected_draining")?,
            protocol_errors: obj.num("protocol_errors")?,
            completed: obj.num("completed")?,
            failed: obj.num("failed")?,
            retried: obj.num("retried")?,
            replayed: obj.num("replayed")?,
            dropped: obj.num("dropped")?,
            journal_corrupt_dropped: obj.num("journal_corrupt_dropped")?,
            journal_torn: obj.num("journal_torn")?,
            rows_streamed: obj.num("rows_streamed")?,
            rows_replayed: obj.num("rows_replayed")?,
            streams_shed: obj.num("streams_shed")?,
        })
    }
}

/// Where a job's response frames go: the unbounded channel of a unary
/// request, or the bounded channel of a streaming sweep.
enum Sink {
    Unary(Sender<Response>),
    Stream(SyncSender<Response>),
}

impl Sink {
    /// Deliver one frame. Unary sends never block. Stream sends apply
    /// bounded-buffer back-pressure: poll until the buffer accepts the
    /// frame or `stall` elapses; a full-past-deadline or disconnected
    /// stream reports `false` and the caller sheds it.
    fn send(&self, resp: Response, stall: Duration) -> bool {
        match self {
            Sink::Unary(tx) => tx.send(resp).is_ok(),
            Sink::Stream(tx) => {
                let mut frame = resp;
                let deadline = Instant::now() + stall;
                loop {
                    match tx.try_send(frame) {
                        Ok(()) => return true,
                        Err(TrySendError::Disconnected(_)) => return false,
                        Err(TrySendError::Full(back)) => {
                            if Instant::now() >= deadline {
                                return false;
                            }
                            frame = back;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                }
            }
        }
    }
}

/// One queued unit of work.
struct Job {
    req: Request,
    sink: Sink,
    admitted: usize,
}

/// The durable per-row state of one sweep request, mirrored between
/// RAM and the journal's `sweep-row` records.
///
/// `chain` is the raw (uninverted) CRC-32 register state after folding
/// in every accepted row body, seeded with `0xFFFF_FFFF`. Each
/// journaled row carries the chain value *through itself*, so replay
/// can accept exactly the longest contiguous-from-zero prefix whose
/// chain verifies — a surviving record whose predecessor was lost to
/// bit rot cannot be spliced into the wrong position.
#[derive(Clone)]
struct SweepProgress {
    /// Journaled row bodies, indexed by row position.
    bodies: Vec<String>,
    /// CRC chain state through `bodies`.
    chain: u32,
    /// Whether the terminal `sweep-done` record is durable.
    done: bool,
}

impl Default for SweepProgress {
    fn default() -> SweepProgress {
        SweepProgress {
            bodies: Vec::new(),
            chain: CHAIN_SEED,
            done: false,
        }
    }
}

/// The chain seed before any row is folded in.
const CHAIN_SEED: u32 = 0xFFFF_FFFF;

type CampaignKey = (String, usize, HashAlgoKind, u32);

struct Inner {
    cfg: ServeConfig,
    state: AtomicU8,
    queue: Mutex<VecDeque<Job>>,
    wake: Condvar,
    metrics: Metrics,
    admit_counter: AtomicUsize,
    wire_counter: AtomicUsize,
    append_counter: AtomicUsize,
    stream_counter: AtomicUsize,
    journal: Mutex<Option<Journal>>,
    /// Completed results by request key: `(tag, body)`.
    done: Mutex<HashMap<u64, (String, String)>>,
    /// Journaled campaign chunks: `(key, start, end)` → body.
    chunks: Mutex<HashMap<(u64, usize, usize), String>>,
    /// Durable per-row sweep progress by request key.
    sweeps: Mutex<HashMap<u64, SweepProgress>>,
    campaigns: Mutex<HashMap<CampaignKey, Arc<Campaign>>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Inner {
    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let m = &self.metrics;
        MetricsSnapshot {
            admitted: m.admitted.load(Ordering::Relaxed),
            rejected_overload: m.rejected_overload.load(Ordering::Relaxed),
            rejected_draining: m.rejected_draining.load(Ordering::Relaxed),
            protocol_errors: m.protocol_errors.load(Ordering::Relaxed),
            completed: m.completed.load(Ordering::Relaxed),
            failed: m.failed.load(Ordering::Relaxed),
            retried: m.retried.load(Ordering::Relaxed),
            replayed: m.replayed.load(Ordering::Relaxed),
            dropped: m.dropped.load(Ordering::Relaxed),
            journal_corrupt_dropped: m.journal_corrupt_dropped.load(Ordering::Relaxed),
            journal_torn: m.journal_torn.load(Ordering::Relaxed),
            rows_streamed: m.rows_streamed.load(Ordering::Relaxed),
            rows_replayed: m.rows_replayed.load(Ordering::Relaxed),
            streams_shed: m.streams_shed.load(Ordering::Relaxed),
        }
    }

    /// Look a workload up in the engine suite (the shared `Artifact`
    /// cache: one assembly, FHT set and predecode per workload for the
    /// whole process).
    fn artifact(&self, name: &str) -> Result<Arc<Artifact>, SimError> {
        cimon_bench::suite()
            .iter()
            .find(|a| a.name() == name)
            .cloned()
            .ok_or_else(|| SimError::InvalidConfig {
                message: format!("unknown workload `{name}`"),
            })
    }

    /// Append one record, flush it, and rotate the journal if it has
    /// outgrown its limit. Campaign chunks and rows already absorbed
    /// into a final record are compacted away on rotation.
    fn journal_append(&self, record: Record) {
        let idx = self.append_counter.fetch_add(1, Ordering::Relaxed);
        let mut guard = lock(&self.journal);
        if let Some(journal) = guard.as_mut() {
            // An unwritable journal degrades durability, not service:
            // the result still goes out, it just will not survive a
            // restart.
            let _ = journal.append(&record, idx);
            if journal.len_bytes() > self.cfg.journal_rotate_bytes {
                let live = self.live_records();
                let _ = journal.rotate_if_needed(self.cfg.journal_rotate_bytes, &live);
            }
        }
    }

    /// Every record still worth keeping across a rotation: final
    /// results, plus chunks of campaigns that have no final record
    /// yet.
    fn live_records(&self) -> Vec<Record> {
        let done = lock(&self.done);
        let mut live: Vec<Record> = done
            .iter()
            .map(|(&key, (tag, body))| Record {
                key,
                tag: tag.clone(),
                extra: String::new(),
                body: body.clone(),
            })
            .collect();
        for (&(key, start, end), body) in lock(&self.chunks).iter() {
            if !done.contains_key(&key) {
                live.push(Record {
                    key,
                    tag: "chunk".to_string(),
                    extra: format!("{start}..{end}"),
                    body: body.clone(),
                });
            }
        }
        drop(done);
        for (&key, progress) in lock(&self.sweeps).iter() {
            let mut chain = CHAIN_SEED;
            for (i, body) in progress.bodies.iter().enumerate() {
                chain = ckpt::crc32_continue(chain, body.as_bytes());
                live.push(Record {
                    key,
                    tag: "sweep-row".to_string(),
                    extra: format!("{i}|{chain:08x}"),
                    body: body.clone(),
                });
            }
            if progress.done {
                live.push(Record {
                    key,
                    tag: "sweep-done".to_string(),
                    extra: format!("{}|{chain:08x}", progress.bodies.len()),
                    body: String::new(),
                });
            }
        }
        live
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = lock(&self.queue);
                loop {
                    if self.state() == KILLED {
                        return;
                    }
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    if self.state() == DRAINING {
                        return;
                    }
                    q = self.wake.wait(q).unwrap_or_else(PoisonError::into_inner);
                }
            };
            self.execute(job);
        }
    }

    fn execute(&self, job: Job) {
        let deadline = job
            .req
            .deadline_ms
            .map(Duration::from_millis)
            .or(self.cfg.default_deadline);
        let key = job.req.key();
        let result = match &job.req.body {
            RequestBody::Run(spec) => {
                self.run_request(job.req.id, key, spec, deadline, job.admitted)
            }
            RequestBody::Sweep(spec) => self.sweep_request(&job, key, spec, deadline),
            RequestBody::Campaign(spec) => self.campaign_request(job.req.id, key, spec, deadline),
            // Metrics and drain are answered at admission, never queued.
            RequestBody::Metrics | RequestBody::Drain => return,
        };
        match result {
            Ok(Some(resp)) => {
                self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                job.sink.send(resp, self.cfg.stream_stall);
            }
            // A kill (or a shed stream) abandoned the request
            // mid-flight: no terminal frame, as if the process died —
            // the receiver sees a closed channel.
            Ok(None) => {
                self.metrics.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Err(error) => {
                self.metrics.failed.fetch_add(1, Ordering::Relaxed);
                job.sink.send(
                    Response::Error {
                        id: job.req.id,
                        error,
                    },
                    self.cfg.stream_stall,
                );
            }
        }
    }

    fn run_request(
        &self,
        id: u64,
        key: u64,
        spec: &RunSpec,
        deadline: Option<Duration>,
        admitted: usize,
    ) -> Result<Option<Response>, SimError> {
        if let Some((_, body)) = lock(&self.done).get(&key).cloned() {
            let row = parse_row(&body)?;
            self.metrics.replayed.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(Response::Row {
                id,
                row,
                replayed: true,
            }));
        }
        let artifact = self.artifact(&spec.workload)?;
        let experiment = Experiment {
            artifact,
            monitored: spec.monitored,
            config: SimConfig {
                iht_entries: spec.iht_entries,
                hash_algo: spec.hash_algo,
                hash_seed: spec.hash_seed,
                policy: spec.policy,
                max_wall: deadline,
                ..SimConfig::default()
            },
        };
        let row = self.run_with_retry(&experiment, admitted * ATTEMPT_SPAN, key)?;
        let body = row_body(&row);
        self.journal_append(Record {
            key,
            tag: "row".to_string(),
            extra: String::new(),
            body: body.clone(),
        });
        lock(&self.done).insert(key, ("row".to_string(), body));
        Ok(Some(Response::Row {
            id,
            row,
            replayed: false,
        }))
    }

    /// One experiment with panic isolation and exactly one jittered
    /// retry on transient failure — shared by unary runs and sweep
    /// rows. Attempt `a` rolls chaos site `"serve"` at `base + a`, so a
    /// retry rolls a *different* seeded point than the attempt that
    /// failed (and can therefore heal) while staying deterministic
    /// across runs. The backoff jitter is seeded by the request key:
    /// decorrelated across requests, reproducible for any one of them.
    fn run_with_retry(
        &self,
        experiment: &Experiment,
        base: usize,
        key: u64,
    ) -> Result<ResultRow, SimError> {
        let mut attempt = 0usize;
        loop {
            let idx = base + attempt;
            let outcome =
                parallel_map_isolated(std::slice::from_ref(experiment), 1, "serve", |_, exp| {
                    chaos::maybe_panic("serve", idx);
                    exp.run()
                })
                .pop()
                .unwrap_or_else(|| {
                    Err(SimError::WorkerPanic {
                        site: "serve",
                        message: "isolated map returned no slot".to_string(),
                    })
                });
            match outcome {
                Ok(Ok(row)) => return Ok(row),
                Ok(Err(err)) | Err(err) => {
                    // Transient faults get exactly one backed-off
                    // retry; deterministic errors never do.
                    if err.is_transient() && attempt + 1 < 2 {
                        self.metrics.retried.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(backoff::jittered(
                            self.cfg.retry_backoff,
                            attempt as u32,
                            self.cfg.retry_jitter_seed ^ key,
                        ));
                        attempt += 1;
                        continue;
                    }
                    return Err(err);
                }
            }
        }
    }

    /// The sweep's experiments in canonical row order: the optional
    /// baseline first, then one monitored row per `(algo, entries)`
    /// pair.
    fn sweep_experiments(
        &self,
        spec: &SweepSpec,
        deadline: Option<Duration>,
    ) -> Result<Vec<Experiment>, SimError> {
        let artifact = self.artifact(&spec.workload)?;
        let mut experiments = Vec::new();
        if spec.baseline {
            experiments.push(Experiment {
                artifact: artifact.clone(),
                monitored: false,
                config: SimConfig {
                    max_wall: deadline,
                    ..SimConfig::default()
                },
            });
        }
        for &algo in &spec.hash_algos {
            for &entries in &spec.iht_entries {
                experiments.push(Experiment {
                    artifact: artifact.clone(),
                    monitored: true,
                    config: SimConfig {
                        iht_entries: entries,
                        hash_algo: algo,
                        hash_seed: spec.hash_seed,
                        policy: spec.policy,
                        max_wall: deadline,
                        ..SimConfig::default()
                    },
                });
            }
        }
        Ok(experiments)
    }

    /// Execute (or resume) one sweep: rows stream through the job's
    /// sink as they complete, and *every* row is journaled under the
    /// incremental CRC chain before its frame is sent — the row-grain
    /// durability point.
    ///
    /// Degradation ladder, finest grain first:
    ///
    /// * a row whose experiment keeps failing is journaled and streamed
    ///   as a poisoned [`ResultRow`] — one bad grid point never fails
    ///   the sweep;
    /// * a client that stops consuming past the stall budget sheds the
    ///   *stream* ([`MetricsSnapshot::streams_shed`]) while the worker
    ///   keeps computing and journaling rows, so the reconnect resumes
    ///   from a further cursor instead of repeating the work;
    /// * a kill abandons the request between rows; everything already
    ///   journaled survives the restart.
    fn sweep_request(
        &self,
        job: &Job,
        key: u64,
        spec: &SweepSpec,
        deadline: Option<Duration>,
    ) -> Result<Option<Response>, SimError> {
        let total = spec.rows();
        let resume_at = match &job.req.resume {
            None => 0,
            Some(resume) => {
                if resume.key != key {
                    return Err(SimError::ResumeMismatch {
                        message: format!(
                            "resume key {:016x} does not match request key {key:016x}",
                            resume.key
                        ),
                    });
                }
                if resume.last_acked_row >= total {
                    return Err(SimError::ResumeMismatch {
                        message: format!(
                            "resume row {} out of range for a {total}-row sweep",
                            resume.last_acked_row
                        ),
                    });
                }
                resume.last_acked_row + 1
            }
        };
        let experiments = self.sweep_experiments(spec, deadline)?;
        let mut streaming = true;
        for (row_index, experiment) in experiments.iter().enumerate() {
            // The kill boundary: a row either completes and is
            // journaled, or the whole request is abandoned as if the
            // process died here.
            if self.state() == KILLED {
                return Ok(None);
            }
            let durable = lock(&self.sweeps)
                .get(&key)
                .and_then(|p| p.bodies.get(row_index).cloned());
            let (row, replayed) = match durable {
                Some(body) => {
                    self.metrics.rows_replayed.fetch_add(1, Ordering::Relaxed);
                    (parse_row(&body)?, true)
                }
                None => {
                    let base = (job.admitted + row_index) * ATTEMPT_SPAN;
                    let fresh = self
                        .run_with_retry(experiment, base, key)
                        .unwrap_or_else(|err| ResultRow::poisoned(experiment, err));
                    let body = row_body(&fresh);
                    // Stream the *durable* form of the row — what the
                    // journal round-trips — so a fresh frame and its
                    // post-restart replay are byte-identical, not just
                    // equivalent. (The wire format intentionally drops
                    // `expected_exit`; canonicalising here keeps the
                    // chaos differentials exact.)
                    let row = parse_row(&body)?;
                    let mut sweeps = lock(&self.sweeps);
                    let progress = sweeps.entry(key).or_default();
                    let chain = ckpt::crc32_continue(progress.chain, body.as_bytes());
                    progress.bodies.push(body.clone());
                    progress.chain = chain;
                    drop(sweeps);
                    self.journal_append(Record {
                        key,
                        tag: "sweep-row".to_string(),
                        extra: format!("{row_index}|{chain:08x}"),
                        body,
                    });
                    (row, false)
                }
            };
            if streaming && (row_index as u64) >= resume_at {
                if job.sink.send(
                    Response::SweepRow {
                        id: job.req.id,
                        row_index: row_index as u64,
                        row,
                        replayed,
                    },
                    self.cfg.stream_stall,
                ) {
                    self.metrics.rows_streamed.fetch_add(1, Ordering::Relaxed);
                } else {
                    // Shed the stream, keep the work: remaining rows
                    // are still computed and journaled so a resumed
                    // request replays instead of re-simulating.
                    self.metrics.streams_shed.fetch_add(1, Ordering::Relaxed);
                    streaming = false;
                }
            }
        }
        let mut sweeps = lock(&self.sweeps);
        let progress = sweeps.entry(key).or_default();
        if !progress.done && progress.bodies.len() as u64 == total {
            progress.done = true;
            let terminal = Record {
                key,
                tag: "sweep-done".to_string(),
                extra: format!("{total}|{:08x}", progress.chain),
                body: String::new(),
            };
            drop(sweeps);
            self.journal_append(terminal);
        }
        if !streaming {
            return Ok(None);
        }
        Ok(Some(Response::SweepDone {
            id: job.req.id,
            row_count: total,
            resumed_from: resume_at,
        }))
    }

    fn campaign_for(
        &self,
        spec: &CampaignSpec,
        artifact: &Arc<Artifact>,
    ) -> Result<Arc<Campaign>, SimError> {
        let cache_key = (
            spec.workload.clone(),
            spec.iht_entries,
            spec.hash_algo,
            spec.hash_seed,
        );
        if let Some(c) = lock(&self.campaigns).get(&cache_key).cloned() {
            return Ok(c);
        }
        let fht =
            artifact
                .fht(spec.hash_algo, spec.hash_seed)
                .map_err(|e| SimError::InvalidConfig {
                    message: format!("hash generation failed: {e}"),
                })?;
        let campaign = Arc::new(Campaign::new(
            artifact.image().clone(),
            CicConfig {
                iht_entries: spec.iht_entries,
                hash_algo: spec.hash_algo,
                hash_seed: spec.hash_seed,
            },
            fht,
        ));
        Ok(lock(&self.campaigns)
            .entry(cache_key)
            .or_insert(campaign)
            .clone())
    }

    fn campaign_request(
        &self,
        id: u64,
        key: u64,
        spec: &CampaignSpec,
        deadline: Option<Duration>,
    ) -> Result<Option<Response>, SimError> {
        if let Some((_, body)) = lock(&self.done).get(&key).cloned() {
            let result = report::campaign_from_json(&format!("{{{body}}}"))
                .map_err(|m| SimError::Protocol { message: m })?;
            self.metrics.replayed.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(Response::Campaign {
                id,
                result,
                replayed: true,
            }));
        }
        let artifact = self.artifact(&spec.workload)?;
        let campaign = self.campaign_for(spec, &artifact)?;
        let (lo, hi) = artifact.image().text_range();
        let started = Instant::now();
        let base = CampaignConfig {
            runs: spec.runs,
            seed: spec.seed,
            model: spec.model,
            site: spec.site,
            targets: (lo..hi).step_by(4).collect(),
            max_cycles: spec.max_cycles,
            max_wall: deadline,
        };
        let chunk = self.cfg.campaign_chunk.max(1);
        let mut merged = CampaignResult::default();
        let mut replayed = true;
        let mut start = 0;
        while start < spec.runs {
            let end = (start + chunk).min(spec.runs);
            // The kill boundary: a chunk either completes and is
            // journaled, or the whole request is abandoned as if the
            // process died here.
            if self.state() == KILLED {
                return Ok(None);
            }
            if let Some(body) = lock(&self.chunks).get(&(key, start, end)).cloned() {
                let r = report::campaign_from_json(&format!("{{{body}}}"))
                    .map_err(|m| SimError::Protocol { message: m })?;
                merged.merge(&r);
                self.metrics.replayed.fetch_add(1, Ordering::Relaxed);
                start = end;
                continue;
            }
            replayed = false;
            let cfg = CampaignConfig {
                // The request's deadline bounds the whole campaign: each
                // chunk gets what is left of it, flowing into the
                // per-run wall-clock watchdog.
                max_wall: deadline.map(|d| d.saturating_sub(started.elapsed())),
                targets: base.targets.clone(),
                ..base
            };
            let r = campaign.run_range_with_workers(&cfg, start..end, self.cfg.engine_workers)?;
            let body = campaign_body(&r);
            self.journal_append(Record {
                key,
                tag: "chunk".to_string(),
                extra: format!("{start}..{end}"),
                body: body.clone(),
            });
            lock(&self.chunks).insert((key, start, end), body);
            merged.merge(&r);
            start = end;
        }
        let body = campaign_body(&merged);
        self.journal_append(Record {
            key,
            tag: "campaign".to_string(),
            extra: String::new(),
            body: body.clone(),
        });
        lock(&self.done).insert(key, ("campaign".to_string(), body));
        Ok(Some(Response::Campaign {
            id,
            result: merged,
            replayed,
        }))
    }
}

/// The flat-object body (no braces) a result row journals as.
fn row_body(row: &ResultRow) -> String {
    let doc = report::to_json(std::slice::from_ref(row));
    match cimon_bench::json::objects(&doc).as_deref() {
        Ok([one]) => (*one).to_string(),
        _ => String::new(),
    }
}

/// Parse a journaled row body back into a result row.
fn parse_row(body: &str) -> Result<ResultRow, SimError> {
    report::rows_from_json(&format!("[{{{body}}}]"))
        .map_err(|m| SimError::Protocol { message: m })?
        .into_iter()
        .next()
        .ok_or(SimError::Protocol {
            message: "journaled row body held no row".to_string(),
        })
}

/// The flat-object body (no braces) a campaign result journals as.
fn campaign_body(result: &CampaignResult) -> String {
    let doc = report::campaign_to_json(result);
    doc.trim_start_matches('{')
        .trim_end_matches('}')
        .to_string()
}

/// The simulation service. See the crate docs for the contract.
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    journal_path: Option<PathBuf>,
}

impl Server {
    /// Start a server: replay the journal at `journal_path` (when
    /// given), then spawn the worker pool.
    ///
    /// # Errors
    ///
    /// [`SimError::Io`] when the journal cannot be opened or replayed.
    pub fn start(cfg: ServeConfig, journal_path: Option<&Path>) -> Result<Server, SimError> {
        let mut journal = None;
        let mut done = HashMap::new();
        let mut chunks = HashMap::new();
        let mut sweeps: HashMap<u64, SweepProgress> = HashMap::new();
        let metrics = Metrics::default();
        if let Some(path) = journal_path {
            let (j, replay) = Journal::open(path).map_err(|e| SimError::Io {
                message: format!("journal open failed: {e}"),
            })?;
            metrics
                .journal_corrupt_dropped
                .store(replay.corrupt_dropped as u64, Ordering::Relaxed);
            metrics
                .journal_torn
                .store(u64::from(replay.torn_truncated), Ordering::Relaxed);
            for r in replay.records {
                match r.tag.as_str() {
                    "row" | "campaign" => {
                        done.insert(r.key, (r.tag, r.body));
                    }
                    "chunk" => {
                        if let Some((a, b)) = parse_range(&r.extra) {
                            chunks.insert((r.key, a, b), r.body);
                        }
                    }
                    // Row-grain sweep replay: accept exactly the
                    // longest contiguous-from-zero prefix whose CRC
                    // chain verifies. A record whose index or chain
                    // does not extend the prefix (its predecessor was
                    // corrupt, or records got reordered) is dropped —
                    // the rows behind the gap get recomputed, never
                    // trusted out of position.
                    "sweep-row" => {
                        if let Some((idx, stored)) = parse_chain_extra(&r.extra) {
                            let progress = sweeps.entry(r.key).or_default();
                            let chain = ckpt::crc32_continue(progress.chain, r.body.as_bytes());
                            if idx == progress.bodies.len() as u64 && stored == chain {
                                progress.bodies.push(r.body);
                                progress.chain = chain;
                            }
                        }
                    }
                    "sweep-done" => {
                        if let Some((count, stored)) = parse_chain_extra(&r.extra) {
                            let progress = sweeps.entry(r.key).or_default();
                            if count == progress.bodies.len() as u64 && stored == progress.chain {
                                progress.done = true;
                            }
                        }
                    }
                    _ => {}
                }
            }
            journal = Some(j);
        }
        let inner = Arc::new(Inner {
            cfg: cfg.clone(),
            state: AtomicU8::new(RUNNING),
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            metrics,
            admit_counter: AtomicUsize::new(0),
            wire_counter: AtomicUsize::new(0),
            append_counter: AtomicUsize::new(0),
            stream_counter: AtomicUsize::new(0),
            journal: Mutex::new(journal),
            done: Mutex::new(done),
            chunks: Mutex::new(chunks),
            sweeps: Mutex::new(sweeps),
            campaigns: Mutex::new(HashMap::new()),
        });
        // `workers == 0` spawns no pool: admitted work just queues.
        // Useless in production, invaluable for deterministic
        // back-pressure tests.
        let workers = (0..cfg.workers)
            .map(|_| {
                let inner = inner.clone();
                std::thread::spawn(move || inner.worker_loop())
            })
            .collect();
        Ok(Server {
            inner,
            workers: Mutex::new(workers),
            journal_path: journal_path.map(Path::to_path_buf),
        })
    }

    /// The journal path this server persists to, if any.
    pub fn journal_path(&self) -> Option<&Path> {
        self.journal_path.as_deref()
    }

    /// Whether the server still admits work.
    pub fn is_running(&self) -> bool {
        self.inner.state() == RUNNING
    }

    /// The next ingest index for wire-level chaos corruption — one per
    /// received request line, whatever becomes of it.
    pub(crate) fn next_wire_index(&self) -> usize {
        self.inner.wire_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// The next outgoing stream-frame index for the chaos cut site —
    /// one per frame about to be written to a TCP peer.
    pub(crate) fn next_stream_index(&self) -> usize {
        self.inner.stream_counter.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn count_protocol_error(&self) {
        self.inner
            .metrics
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Submit a request; the response arrives on the returned channel.
    /// Shed load answers immediately: a full queue yields a typed
    /// [`SimError::Overloaded`] error response, a draining server
    /// [`SimError::Draining`]. Metrics requests are answered inline.
    pub fn submit(&self, req: Request) -> Receiver<Response> {
        let (tx, rx) = mpsc::channel();
        self.admit(req, Sink::Unary(tx));
        rx
    }

    /// Submit a streaming request: response frames arrive on a
    /// *bounded* channel ([`ServeConfig::stream_buffer`] frames), so a
    /// consumer that stops reading back-pressures the worker and —
    /// past [`ServeConfig::stream_stall`] — sheds the stream rather
    /// than the server. A sweep yields one `SweepRow` frame per row
    /// and a terminal `SweepDone`; a shed or killed stream closes the
    /// channel without a terminal frame. Non-sweep requests work too,
    /// delivering their single response as the only frame.
    pub fn submit_stream(&self, req: Request) -> Receiver<Response> {
        let (tx, rx) = mpsc::sync_channel(self.inner.cfg.stream_buffer.max(1));
        self.admit(req, Sink::Stream(tx));
        rx
    }

    fn admit(&self, req: Request, sink: Sink) {
        let id = req.id;
        let stall = self.inner.cfg.stream_stall;
        match &req.body {
            RequestBody::Metrics => {
                sink.send(
                    Response::Metrics {
                        id,
                        metrics: self.metrics(),
                    },
                    stall,
                );
                return;
            }
            RequestBody::Drain => {
                let report = self.drain();
                sink.send(Response::Drained { id, report }, stall);
                return;
            }
            _ => {}
        }
        if let Err((sink, error)) = self.try_enqueue(req, sink) {
            match &error {
                SimError::Overloaded { .. } => {
                    self.inner
                        .metrics
                        .rejected_overload
                        .fetch_add(1, Ordering::Relaxed);
                }
                _ => {
                    self.inner
                        .metrics
                        .rejected_draining
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            sink.send(Response::Error { id, error }, stall);
        }
    }

    fn try_enqueue(&self, req: Request, sink: Sink) -> Result<(), (Sink, SimError)> {
        let mut q = lock(&self.inner.queue);
        if self.inner.state() != RUNNING {
            return Err((sink, SimError::Draining));
        }
        if q.len() >= self.inner.cfg.queue_capacity {
            let queued = q.len();
            return Err((
                sink,
                SimError::Overloaded {
                    queued,
                    capacity: self.inner.cfg.queue_capacity,
                },
            ));
        }
        let admitted = self.inner.admit_counter.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.admitted.fetch_add(1, Ordering::Relaxed);
        q.push_back(Job {
            req,
            sink,
            admitted,
        });
        drop(q);
        self.inner.wake.notify_one();
        Ok(())
    }

    /// Submit and block for the response. A channel closed without a
    /// response (the server was killed) comes back as a typed
    /// [`SimError::Io`] error response.
    pub fn call(&self, req: Request) -> Response {
        let id = req.id;
        match self.submit(req).recv() {
            Ok(resp) => resp,
            Err(_) => Response::Error {
                id,
                error: SimError::Io {
                    message: "server terminated before responding".to_string(),
                },
            },
        }
    }

    /// Current metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.snapshot()
    }

    /// Graceful shutdown: stop admitting (new work is rejected with
    /// [`SimError::Draining`]), let the workers finish everything
    /// already queued, flush and sync the journal, and report. Safe to
    /// call more than once; later calls just report again.
    pub fn drain(&self) -> DrainReport {
        let _ = self.inner.state.compare_exchange(
            RUNNING,
            DRAINING,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        self.inner.wake.notify_all();
        self.join_workers();
        // With the pool gone, anything still queued (possible only
        // with a zero-worker pool or a panicked worker) will never
        // run: count it dropped rather than leave callers waiting on
        // a channel nobody will answer.
        let stranded = lock(&self.inner.queue).drain(..).count() as u64;
        self.inner
            .metrics
            .dropped
            .fetch_add(stranded, Ordering::Relaxed);
        if let Some(journal) = lock(&self.inner.journal).as_mut() {
            let _ = journal.sync();
        }
        let m = self.metrics();
        DrainReport {
            completed: m.completed,
            dropped: m.dropped,
            rejected: m.rejected_overload + m.rejected_draining,
        }
    }

    /// Simulated crash: stop admitting, abandon the queue and any
    /// request between journal chunk boundaries, and return without
    /// flushing anything beyond what [`Journal::append`] already
    /// pushed to the OS. Everything journaled before the kill is
    /// durable; nothing else is. The crash-recovery suite restarts a
    /// server on the same journal afterwards.
    pub fn kill(&self) {
        self.inner.state.store(KILLED, Ordering::Release);
        self.inner.wake.notify_all();
        let abandoned = lock(&self.inner.queue).len() as u64;
        self.inner
            .metrics
            .dropped
            .fetch_add(abandoned, Ordering::Relaxed);
        self.join_workers();
    }

    fn join_workers(&self) {
        let handles: Vec<_> = lock(&self.workers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn parse_range(extra: &str) -> Option<(usize, usize)> {
    let (a, b) = extra.split_once("..")?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

/// Parse a sweep record's `"{index}|{chain:08x}"` qualifier.
fn parse_chain_extra(extra: &str) -> Option<(u64, u32)> {
    let (idx, chain) = extra.split_once('|')?;
    Some((idx.parse().ok()?, u32::from_str_radix(chain, 16).ok()?))
}
