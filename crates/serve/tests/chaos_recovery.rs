//! Crash-recovery and chaos differential tests: the tentpole claim of
//! this crate is that a server killed mid-campaign and restarted on
//! its journal produces the *same* result set as a server that was
//! never interrupted — with or without `CIMON_CHAOS=1` injecting
//! worker panics, request corruption and journal bit-flips along the
//! way.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cimon_core::{HashAlgoKind, SimError};
use cimon_faults::{FaultModel, FaultSite};
use cimon_serve::{net, CampaignSpec, Client, Request, RequestBody, Response, ServeConfig, Server};
use cimon_sim::chaos;

static SCRATCH: AtomicU64 = AtomicU64::new(0);

/// A private scratch directory per test invocation.
fn scratch_dir(label: &str) -> PathBuf {
    let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "cimon-serve-recovery-{label}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn campaign_request(id: u64) -> Request {
    Request {
        id,
        deadline_ms: None,
        resume: None,
        body: RequestBody::Campaign(CampaignSpec {
            workload: "bitcount".to_string(),
            iht_entries: 8,
            hash_algo: HashAlgoKind::Xor,
            hash_seed: 0,
            runs: 48,
            seed: 42,
            model: FaultModel::SingleBit,
            site: FaultSite::StoredImage,
            max_cycles: 60_000,
        }),
    }
}

fn recovery_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 8,
        workers: 1,
        engine_workers: 2,
        campaign_chunk: 6,
        retry_backoff: Duration::from_millis(1),
        ..ServeConfig::default()
    }
}

/// The tentpole differential: kill a journaling server mid-campaign,
/// restart it on the same journal, and require the merged campaign
/// counters to be identical to an uninterrupted server's.
#[test]
fn killed_and_restarted_server_matches_an_uninterrupted_one() {
    let dir = scratch_dir("kill");
    let journal = dir.join("results.journal");

    // Uninterrupted oracle: no journal, same request.
    let oracle_server = Server::start(recovery_config(), None).expect("oracle starts");
    let oracle = match oracle_server.call(campaign_request(1)) {
        Response::Campaign { result, .. } => result,
        other => panic!("oracle campaign failed: {other:?}"),
    };
    oracle_server.drain();

    // Victim: journal on, killed as soon as the journal shows progress
    // (i.e. mid-campaign whenever the machine is not absurdly fast).
    let victim = Arc::new(Server::start(recovery_config(), Some(&journal)).expect("victim starts"));
    let handle = {
        let victim = victim.clone();
        std::thread::spawn(move || victim.call(campaign_request(2)))
    };
    // Wait for at least five journaled records before pulling the
    // plug: under `CIMON_CHAOS=1` the seeded journal bit-flips destroy
    // the records at append indices 0 and 1, and the test needs some
    // intact ones to prove replay happens at all. A finished campaign
    // writes nine records, so this always unblocks.
    let started = Instant::now();
    while started.elapsed() < Duration::from_secs(10) {
        let records = std::fs::read(&journal)
            .map(|b| b.iter().filter(|&&c| c == b'\n').count())
            .unwrap_or(0);
        if records >= 5 {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    victim.kill();
    // The abandoned call either never got a response (killed mid-work)
    // or finished just before the kill; both are legitimate outcomes
    // of a crash.
    let _ = handle.join();

    // Survivor: same journal. Completed chunks replay; missing ones
    // are re-simulated deterministically.
    let survivor = Server::start(recovery_config(), Some(&journal)).expect("survivor starts");
    let recovered = match survivor.call(campaign_request(3)) {
        Response::Campaign { result, .. } => result,
        other => panic!("recovered campaign failed: {other:?}"),
    };
    assert_eq!(
        recovered, oracle,
        "a killed-and-restarted server must reproduce the uninterrupted result set"
    );
    assert!(
        survivor.metrics().replayed >= 1,
        "recovery must reuse journaled work, not recompute everything"
    );
    // A third run on the now-complete journal is a pure replay.
    let replay = survivor.call(campaign_request(4));
    match replay {
        Response::Campaign {
            result, replayed, ..
        } => {
            assert_eq!(result, oracle);
            assert!(replayed, "a finished campaign must come from the journal");
        }
        other => panic!("replay failed: {other:?}"),
    }
    survivor.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flip a byte mid-journal and tear the final record: the survivor
/// must drop the damage, report it, and still converge on the oracle.
#[test]
fn corrupted_and_torn_journals_recover_to_the_same_results() {
    let dir = scratch_dir("corrupt");
    let journal = dir.join("results.journal");

    let writer = Server::start(recovery_config(), Some(&journal)).expect("writer starts");
    let original = match writer.call(campaign_request(1)) {
        Response::Campaign { result, .. } => result,
        other => panic!("campaign failed: {other:?}"),
    };
    writer.drain();

    // Vandalise the journal: flip one content byte in the first record
    // and tear the tail off the last one.
    let mut bytes = std::fs::read(&journal).expect("journal bytes");
    assert!(
        bytes.iter().filter(|&&b| b == b'\n').count() >= 2,
        "need at least two records to corrupt one and tear another"
    );
    let first_body = bytes
        .iter()
        .position(|&b| b == b'}')
        .expect("first record body")
        - 1;
    bytes[first_body] ^= 0x20;
    bytes.truncate(bytes.len() - 3);
    std::fs::write(&journal, &bytes).expect("rewrite journal");

    let survivor = Server::start(recovery_config(), Some(&journal)).expect("survivor starts");
    let m = survivor.metrics();
    assert!(
        m.journal_corrupt_dropped >= 1,
        "the bit-flipped record must be dropped, not trusted"
    );
    assert_eq!(m.journal_torn, 1, "the torn tail must be truncated");
    let recovered = match survivor.call(campaign_request(2)) {
        Response::Campaign { result, .. } => result,
        other => panic!("recovered campaign failed: {other:?}"),
    };
    assert_eq!(
        recovered, original,
        "recomputing damaged chunks must converge on the original results"
    );
    survivor.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Under `CIMON_CHAOS=1`, request lines are corrupted at seeded wire
/// indices. Every corrupted line must yield a typed protocol error and
/// every clean line a real response — no hangs, no dropped
/// connections, with decisions exactly matching the chaos predicate.
#[test]
fn chaos_request_corruption_yields_typed_errors_at_the_seeded_indices() {
    let server = Arc::new(Server::start(recovery_config(), None).expect("server starts"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    net::serve(server.clone(), listener).expect("accept loop");
    let mut client = Client::connect(addr).expect("connect");

    for wire_index in 0..24u64 {
        let req = Request {
            id: wire_index + 100,
            deadline_ms: None,
            resume: None,
            body: RequestBody::Metrics,
        };
        let resp = client.request(&req).expect("every line gets a response");
        if chaos::corrupts_request_at(wire_index as usize) {
            match resp {
                Response::Error {
                    error: SimError::Protocol { .. },
                    ..
                } => {}
                other => panic!(
                    "wire index {wire_index} is corrupted under chaos and must \
                     yield a protocol error, got {other:?}"
                ),
            }
        } else {
            match resp {
                Response::Metrics { id, .. } => assert_eq!(id, wire_index + 100),
                other => panic!("clean wire index {wire_index} must succeed, got {other:?}"),
            }
        }
    }
    let expected_errors = (0..24).filter(|&i| chaos::corrupts_request_at(i)).count() as u64;
    assert_eq!(server.metrics().protocol_errors, expected_errors);
    if chaos::enabled() {
        assert!(expected_errors > 0, "chaos mode must corrupt some requests");
    } else {
        assert_eq!(expected_errors, 0);
    }
    server.drain();
}
