//! End-to-end tests of the service: TCP round trips, back-pressure,
//! deadlines, drain semantics, and typed protocol errors.
//!
//! Each test binds its own listener on an ephemeral port and runs a
//! private server, so the suite parallelises safely.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use cimon_core::{HashAlgoKind, SimError};
use cimon_os::RefillPolicyKind;
use cimon_serve::{net, Client, Request, RequestBody, Response, RunSpec, ServeConfig, Server};
use cimon_sim::engine::RowStatus;

fn run_request(id: u64, workload: &str) -> Request {
    Request {
        id,
        deadline_ms: None,
        resume: None,
        body: RequestBody::Run(RunSpec {
            workload: workload.to_string(),
            monitored: true,
            iht_entries: 8,
            hash_algo: HashAlgoKind::Xor,
            hash_seed: 0,
            policy: RefillPolicyKind::ReplaceHalfLru,
        }),
    }
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 8,
        workers: 2,
        engine_workers: 2,
        retry_backoff: Duration::from_millis(1),
        ..ServeConfig::default()
    }
}

/// Start a server and a TCP front on an ephemeral port; return the
/// server and a connected client.
fn serve_tcp(cfg: ServeConfig) -> (Arc<Server>, Client) {
    let server = Arc::new(Server::start(cfg, None).expect("server starts"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().expect("local addr");
    net::serve(server.clone(), listener).expect("accept loop starts");
    let client = Client::connect(addr).expect("client connects");
    (server, client)
}

/// Tests with exact wire expectations skip under `CIMON_CHAOS=1` —
/// seeded request corruption would (by design) turn some of their
/// requests into protocol errors. `tests/chaos_recovery.rs` owns the
/// chaos-mode assertions.
fn chaos_mode() -> bool {
    cimon_sim::chaos::enabled()
}

#[test]
fn rows_round_trip_over_tcp_and_cache_as_replays() {
    if chaos_mode() {
        return;
    }
    let (server, mut client) = serve_tcp(quick_config());
    let resp = client
        .request(&run_request(7, "bitcount"))
        .expect("response");
    match &resp {
        Response::Row { id, row, replayed } => {
            assert_eq!(*id, 7);
            assert!(!replayed);
            assert_eq!(row.workload, "bitcount");
            assert_eq!(row.status, RowStatus::Ok);
        }
        other => panic!("expected a row, got {other:?}"),
    }
    // Same work under a different envelope id: served from cache.
    let again = client
        .request(&run_request(8, "bitcount"))
        .expect("response");
    match &again {
        Response::Row { id, row, replayed } => {
            assert_eq!(*id, 8);
            assert!(replayed, "identical work must be replayed, not re-run");
            assert_eq!(row.workload, "bitcount");
        }
        other => panic!("expected a replayed row, got {other:?}"),
    }
    let metrics = match client
        .request(&Request {
            id: 9,
            deadline_ms: None,
            resume: None,
            body: RequestBody::Metrics,
        })
        .expect("metrics response")
    {
        Response::Metrics { metrics, .. } => metrics,
        other => panic!("expected metrics, got {other:?}"),
    };
    assert!(metrics.completed >= 2);
    assert_eq!(metrics.replayed, 1);
    assert_eq!(metrics.protocol_errors, 0);
    drop(client);
    server.drain();
}

#[test]
fn full_queue_sheds_with_a_typed_overload_rejection() {
    // No workers: admitted requests stay queued, so the shed point is
    // exact instead of racing the pool.
    let server = Server::start(
        ServeConfig {
            queue_capacity: 3,
            workers: 0,
            ..quick_config()
        },
        None,
    )
    .expect("server starts");
    let pending: Vec<_> = (0..3)
        .map(|i| server.submit(run_request(i, "bitcount")))
        .collect();
    let shed = server.call(run_request(99, "bitcount"));
    match shed {
        Response::Error {
            id,
            error: SimError::Overloaded { queued, capacity },
        } => {
            assert_eq!(id, 99);
            assert_eq!((queued, capacity), (3, 3));
        }
        other => panic!("expected a typed overload rejection, got {other:?}"),
    }
    let m = server.metrics();
    assert_eq!(m.admitted, 3);
    assert_eq!(m.rejected_overload, 1);
    // Drain with no workers abandons the stranded queue and says so.
    let report = server.drain();
    assert_eq!(report.dropped, 3);
    assert_eq!(report.rejected, 1);
    for rx in pending {
        assert!(
            rx.recv().is_err(),
            "stranded requests must not receive fabricated responses"
        );
    }
}

#[test]
fn deadlines_turn_slow_simulations_into_timed_out_rows() {
    let server = Server::start(quick_config(), None).expect("server starts");
    let resp = server.call(Request {
        id: 1,
        deadline_ms: Some(0),
        resume: None,
        body: RequestBody::Run(RunSpec {
            workload: "sha".to_string(),
            monitored: true,
            iht_entries: 8,
            hash_algo: HashAlgoKind::Xor,
            hash_seed: 0,
            policy: RefillPolicyKind::ReplaceHalfLru,
        }),
    });
    match resp {
        Response::Row { row, .. } => {
            assert_eq!(
                row.status,
                RowStatus::TimedOut,
                "an expired deadline must come back as a timed-out row"
            );
        }
        other => panic!("expected a timed-out row, got {other:?}"),
    }
    server.drain();
}

#[test]
fn drain_stops_admission_finishes_in_flight_and_reports() {
    if chaos_mode() {
        return;
    }
    let (server, mut client) = serve_tcp(quick_config());
    for (id, workload) in [(1, "bitcount"), (2, "crc32"), (3, "fib")] {
        // Unknown workloads are fine here; the point is the requests
        // are all answered before the drain report is produced.
        let _ = client.request(&run_request(id, workload));
    }
    let report = match client
        .request(&Request {
            id: 4,
            deadline_ms: None,
            resume: None,
            body: RequestBody::Drain,
        })
        .expect("drain response")
    {
        Response::Drained { id, report } => {
            assert_eq!(id, 4);
            report
        }
        other => panic!("expected a drain report, got {other:?}"),
    };
    assert!(report.completed >= 1);
    assert_eq!(report.dropped, 0, "a drain finishes queued work");
    assert!(!server.is_running());
    // Post-drain work is refused with the draining rejection, in
    // process and over the still-open connection alike.
    match server.call(run_request(5, "bitcount")) {
        Response::Error {
            error: SimError::Draining,
            ..
        } => {}
        other => panic!("expected a draining rejection, got {other:?}"),
    }
    match client.request(&run_request(6, "bitcount")) {
        Ok(Response::Error {
            error: SimError::Draining,
            ..
        }) => {}
        other => panic!("expected a draining rejection over TCP, got {other:?}"),
    }
}

#[test]
fn malformed_lines_get_typed_protocol_errors_not_dropped_connections() {
    if chaos_mode() {
        return;
    }
    use std::io::{BufRead, BufReader, Write};
    let server = Arc::new(Server::start(quick_config(), None).expect("server starts"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    net::serve(server.clone(), listener).expect("accept");
    // Bypass the typed client: write a garbage line directly.
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"this is not a request\n")
        .expect("write garbage");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    assert!(
        reply.contains("\"status\":\"error\"") && reply.contains("protocol"),
        "garbage must get a typed protocol error, got: {reply}"
    );
    // The connection survives and still serves valid requests.
    let line = run_request(11, "bitcount").to_line();
    stream.write_all(line.as_bytes()).expect("write request");
    stream.write_all(b"\n").expect("newline");
    reply.clear();
    reader.read_line(&mut reply).expect("read row");
    assert!(
        reply.contains("\"status\":\"row\""),
        "valid work after garbage must still run, got: {reply}"
    );
    assert!(server.metrics().protocol_errors >= 1);
    server.drain();
}

#[test]
fn unknown_workloads_are_invalid_config_and_never_retried() {
    let server = Server::start(quick_config(), None).expect("server starts");
    match server.call(run_request(1, "no-such-workload")) {
        Response::Error {
            error: SimError::InvalidConfig { message },
            ..
        } => assert!(message.contains("no-such-workload")),
        other => panic!("expected invalid-config, got {other:?}"),
    }
    assert_eq!(
        server.metrics().retried,
        0,
        "deterministic failures must never be retried"
    );
    server.drain();
}
