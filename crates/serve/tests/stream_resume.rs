//! Row-grain durability and streaming-resume differentials: the
//! tentpole claim of this suite is that a sweep killed at an arbitrary
//! row and resumed — in process on a restarted server, or over TCP by
//! a reconnecting client surviving chaos stream cuts — produces a row
//! set **byte-identical** to an uninterrupted oracle's, poison states
//! included, with every durable row replayed rather than re-simulated.
//! Green with and without `CIMON_CHAOS=1`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cimon_core::{HashAlgoKind, SimError};
use cimon_os::RefillPolicyKind;
use cimon_serve::{
    net, Client, ClientConfig, Request, RequestBody, Response, ResumeFrom, ServeConfig, Server,
    SweepSpec,
};
use cimon_sim::chaos;
use cimon_sim::engine::ResultRow;

static SCRATCH: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(label: &str) -> PathBuf {
    let n = SCRATCH.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "cimon-serve-stream-{label}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The canonical 7-row sweep (baseline + 2 algos × 3 IHT sizes).
fn sweep_request(id: u64) -> Request {
    Request {
        id,
        deadline_ms: None,
        resume: None,
        body: RequestBody::Sweep(SweepSpec {
            workload: "bitcount".to_string(),
            iht_entries: vec![1, 4, 8],
            hash_algos: vec![HashAlgoKind::Xor, HashAlgoKind::Crc32],
            hash_seed: 0,
            policy: RefillPolicyKind::Fifo,
            baseline: true,
        }),
    }
}

fn stream_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 8,
        workers: 1,
        engine_workers: 2,
        retry_backoff: Duration::from_millis(1),
        // Room for all 8 frames of the canonical sweep, so a test can
        // hold the receiver without shedding unless it means to.
        stream_buffer: 16,
        stream_stall: Duration::from_millis(100),
        ..ServeConfig::default()
    }
}

/// Drain one stream: ordered rows, their replay flags, and the
/// terminal frame (None when the channel died without one).
#[allow(clippy::type_complexity)]
fn collect(rx: &Receiver<Response>) -> (Vec<(u64, ResultRow, bool)>, Option<(u64, u64)>) {
    let mut rows = Vec::new();
    let mut done = None;
    while let Ok(frame) = rx.recv() {
        match frame {
            Response::SweepRow {
                row_index,
                row,
                replayed,
                ..
            } => rows.push((row_index, row, replayed)),
            Response::SweepDone {
                row_count,
                resumed_from,
                ..
            } => {
                done = Some((row_count, resumed_from));
                break;
            }
            other => panic!("unexpected frame in sweep stream: {other:?}"),
        }
    }
    (rows, done)
}

/// Run the sweep uninterrupted on a fresh journal-less server.
fn oracle_rows(req: &Request) -> Vec<ResultRow> {
    let server = Server::start(stream_config(), None).expect("oracle starts");
    let rx = server.submit_stream(req.clone());
    let (rows, done) = collect(&rx);
    let (count, resumed) = done.expect("oracle stream completes");
    assert_eq!(resumed, 0);
    assert_eq!(count as usize, rows.len());
    for (i, (idx, _, replayed)) in rows.iter().enumerate() {
        assert_eq!(*idx, i as u64);
        assert!(!replayed, "a fresh oracle simulates everything");
    }
    server.drain();
    rows.into_iter().map(|(_, row, _)| row).collect()
}

/// The tentpole differential: kill a journaling server at a row
/// boundary mid-sweep, restart it on the same journal, and require the
/// full row set — poison states included — to be byte-identical to the
/// uninterrupted oracle's.
#[test]
fn sweep_killed_at_a_row_and_restarted_matches_the_oracle() {
    let dir = scratch_dir("kill");
    let journal = dir.join("results.journal");
    let oracle = oracle_rows(&sweep_request(1));

    let victim = Arc::new(Server::start(stream_config(), Some(&journal)).expect("victim starts"));
    let rx = victim.submit_stream(sweep_request(2));
    // Kill once the journal shows at least two durable rows — a seeded
    // mid-sweep crash point (chaos bit-flips may destroy some of those
    // records on disk; replay handles that below).
    let started = Instant::now();
    while started.elapsed() < Duration::from_secs(10) {
        let lines = std::fs::read(&journal)
            .map(|b| b.iter().filter(|&&c| c == b'\n').count())
            .unwrap_or(0);
        if lines >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    victim.kill();
    // The abandoned stream saw some prefix of the rows and no terminal
    // frame; whatever arrived must already match the oracle.
    let (partial, done) = collect(&rx);
    if done.is_none() {
        for (idx, row, _) in &partial {
            assert_eq!(row, &oracle[*idx as usize], "pre-kill row {idx} diverged");
        }
    }

    // Survivor: same journal, same request, fresh stream. Durable rows
    // replay; the rest are re-simulated deterministically.
    let survivor = Server::start(stream_config(), Some(&journal)).expect("survivor starts");
    let rx = survivor.submit_stream(sweep_request(3));
    let (rows, done) = collect(&rx);
    let (count, resumed) = done.expect("survivor stream completes");
    assert_eq!(resumed, 0, "a fresh request streams from row zero");
    assert_eq!(count as usize, oracle.len());
    assert_eq!(rows.len(), oracle.len());
    for (i, (idx, row, _)) in rows.iter().enumerate() {
        assert_eq!(*idx, i as u64);
        assert_eq!(
            row, &oracle[i],
            "row {i} after kill-and-restart diverged from the oracle"
        );
    }
    if !chaos::enabled() {
        assert!(
            survivor.metrics().rows_replayed >= 1,
            "recovery must reuse journaled rows, not recompute everything"
        );
    }
    // A second pass over the now-complete sweep is a pure replay.
    let rx = survivor.submit_stream(sweep_request(4));
    let (rows, done) = collect(&rx);
    assert!(done.is_some());
    assert!(rows.iter().all(|(_, _, replayed)| *replayed));
    assert_eq!(
        rows.iter().map(|(_, r, _)| r.clone()).collect::<Vec<_>>(),
        oracle
    );
    survivor.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An explicit resume cursor streams only the missing suffix, and a
/// bogus cursor is rejected with a typed `resume-mismatch`.
#[test]
fn resume_cursor_streams_the_suffix_and_mismatches_are_typed() {
    let oracle = oracle_rows(&sweep_request(1));
    let server = Server::start(stream_config(), None).expect("server starts");
    let rx = server.submit_stream(sweep_request(2));
    let (_, done) = collect(&rx);
    assert!(done.is_some());

    // Resume after row 2: rows 3.. stream as replays.
    let key = sweep_request(2).key();
    let resumed_req = Request {
        resume: Some(ResumeFrom {
            key,
            last_acked_row: 2,
        }),
        ..sweep_request(3)
    };
    let rx = server.submit_stream(resumed_req);
    let (rows, done) = collect(&rx);
    let (count, resumed) = done.expect("resumed stream completes");
    assert_eq!(resumed, 3);
    assert_eq!(count as usize, oracle.len());
    assert_eq!(rows.len(), oracle.len() - 3);
    for (offset, (idx, row, replayed)) in rows.iter().enumerate() {
        assert_eq!(*idx as usize, 3 + offset);
        assert!(*replayed, "resumed rows come from the durable store");
        assert_eq!(row, &oracle[3 + offset]);
    }

    // Wrong key, and a cursor past the end: typed rejections.
    for bad in [
        ResumeFrom {
            key: key ^ 1,
            last_acked_row: 0,
        },
        ResumeFrom {
            key,
            last_acked_row: oracle.len() as u64,
        },
    ] {
        let rx = server.submit_stream(Request {
            resume: Some(bad),
            ..sweep_request(4)
        });
        match rx.recv().expect("a rejection frame") {
            Response::Error {
                error: SimError::ResumeMismatch { .. },
                ..
            } => {}
            other => panic!("bad cursor {bad:?} must be a resume-mismatch, got {other:?}"),
        }
    }
    server.drain();
}

/// Back-pressure: a consumer that never reads past the tiny buffer
/// sheds the *stream* while the rows keep landing in the durable
/// store — a later request replays them all instead of re-simulating.
#[test]
fn unread_streams_shed_but_their_rows_stay_durable() {
    let dir = scratch_dir("shed");
    let journal = dir.join("results.journal");
    let cfg = ServeConfig {
        stream_buffer: 2,
        stream_stall: Duration::from_millis(20),
        ..stream_config()
    };
    let server = Server::start(cfg, Some(&journal)).expect("server starts");
    // Hold the receiver without reading: the third frame stalls past
    // the budget and the stream is shed.
    let rx = server.submit_stream(sweep_request(1));
    let started = Instant::now();
    while server.metrics().streams_shed == 0 && started.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(server.metrics().streams_shed, 1, "the stream must shed");
    // The buffered prefix is readable; the channel then closes with no
    // terminal frame.
    let (rows, done) = collect(&rx);
    assert!(done.is_none(), "a shed stream has no terminal frame");
    assert!(rows.len() <= 2);

    // The work was never abandoned: once the sweep finishes journaling,
    // a fresh request streams every row from the durable store.
    let total = 7u64;
    let started = Instant::now();
    let complete = loop {
        let rx = server.submit_stream(sweep_request(2));
        let (rows, done) = collect(&rx);
        if done.is_some() && rows.len() as u64 == total {
            break rows;
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "sweep never became fully durable"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    if !chaos::enabled() {
        assert!(
            complete.iter().all(|(_, _, replayed)| *replayed),
            "every row was journaled by the shed sweep"
        );
    }
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two sweeps interleave their row records in one journal; a restarted
/// server replays both without cross-contamination.
#[test]
fn interleaved_sweep_journals_replay_per_request() {
    let dir = scratch_dir("interleave");
    let journal = dir.join("results.journal");
    let second = |id| Request {
        body: RequestBody::Sweep(SweepSpec {
            workload: "bitcount".to_string(),
            iht_entries: vec![2, 16],
            hash_algos: vec![HashAlgoKind::Xor],
            hash_seed: 7,
            policy: RefillPolicyKind::Fifo,
            baseline: false,
        }),
        ..sweep_request(id)
    };
    let oracle_a = oracle_rows(&sweep_request(1));
    let oracle_b = oracle_rows(&second(1));

    // Two workers run the two sweeps concurrently, interleaving their
    // journal appends.
    let cfg = ServeConfig {
        workers: 2,
        ..stream_config()
    };
    let writer = Server::start(cfg, Some(&journal)).expect("writer starts");
    let rx_a = writer.submit_stream(sweep_request(2));
    let rx_b = writer.submit_stream(second(3));
    assert!(collect(&rx_a).1.is_some());
    assert!(collect(&rx_b).1.is_some());
    writer.drain();

    let survivor = Server::start(stream_config(), Some(&journal)).expect("survivor starts");
    for (req, oracle) in [(sweep_request(4), &oracle_a), (second(5), &oracle_b)] {
        let rx = survivor.submit_stream(req);
        let (rows, done) = collect(&rx);
        assert!(done.is_some());
        assert_eq!(rows.len(), oracle.len());
        for (i, (idx, row, replayed)) in rows.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(row, &oracle[i], "row {i} cross-contaminated");
            if !chaos::enabled() {
                assert!(*replayed, "a drained journal replays everything");
            }
        }
    }
    survivor.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The TCP path end to end: `Client::sweep` survives seeded chaos
/// stream cuts and wire corruption by reconnecting with a resume
/// cursor, and still hands back the oracle's exact rows.
#[test]
fn tcp_client_survives_stream_cuts_via_resume() {
    let oracle = oracle_rows(&sweep_request(1));
    let server = Arc::new(Server::start(stream_config(), None).expect("server starts"));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    net::serve(server.clone(), listener).expect("accept loop");

    let mut client = Client::connect_with(
        addr,
        ClientConfig {
            reconnect_backoff: Duration::from_millis(1),
            max_reconnects: 12,
            jitter_seed: 0xBEEF,
        },
    )
    .expect("connect");
    let rows = client.sweep(&sweep_request(2)).expect("sweep completes");
    assert_eq!(rows, oracle, "TCP sweep diverged from the oracle");

    // Under chaos the seeded cut site must actually have fired at
    // least once across the frames this stream wrote.
    if chaos::enabled() {
        let frames = 8; // 7 rows + terminal
        let any_cut = (0..frames).any(chaos::cuts_stream_at);
        if any_cut {
            let m = server.metrics();
            assert!(
                m.rows_replayed > 0 || m.rows_streamed > oracle.len() as u64,
                "surviving a cut must have re-streamed or replayed rows"
            );
        }
    }
    server.drain();
}
