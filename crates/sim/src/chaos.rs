//! # Self-chaos harness
//!
//! The paper's methodology is fault injection: corrupt the monitored
//! program at seeded random points and check the monitor contains the
//! damage. This module turns that methodology inward on the simulator
//! itself — with `CIMON_CHAOS=1` in the environment, the engine layers
//! inject their own faults at deterministic, seeded points:
//!
//! * **worker panics** in sweep and campaign pools
//!   ([`maybe_panic`]) — exercising `catch_unwind` isolation and
//!   poisoned-row degradation;
//! * **artificial shard delays** in the splice replay pool
//!   ([`maybe_delay`]) — exercising order-independence of the
//!   deterministic stitch;
//! * **snapshot bit-flips** before splice shards restore
//!   ([`maybe_corrupt_snapshot`]) — exercising checksum verification
//!   and the serial-fallback rung of the degradation ladder.
//!
//! Everything is keyed off `(site, index)` with a SplitMix64 mix of the
//! seed (`CIMON_CHAOS_SEED`, default `0xC1A05`), so a chaos run is
//! reproducible: the same seed injects the same faults at the same grid
//! points, and the differential suites can assert that every row *not*
//! hit by an injection is byte-identical to a clean run.
//!
//! With the variable unset the module is a handful of dead branches —
//! one `OnceLock` read per call site — and injects nothing.

use std::sync::OnceLock;
use std::time::Duration;

use cimon_pipeline::ProcessorSnapshot;

/// Injection configuration, resolved from the environment once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// One in this many sweep/campaign items panics (0 disables).
    pub panic_one_in: u64,
    /// One in this many splice shards sleeps briefly (0 disables).
    pub delay_one_in: u64,
    /// One in this many splice shards sees a bit-flipped snapshot
    /// (0 disables).
    pub corrupt_one_in: u64,
}

impl ChaosConfig {
    /// The default injection rates: aggressive enough that a grid of a
    /// few dozen points sees several of each fault class.
    pub fn with_seed(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_one_in: 5,
            delay_one_in: 4,
            corrupt_one_in: 4,
        }
    }

    /// Read `CIMON_CHAOS` / `CIMON_CHAOS_SEED`: `None` unless chaos is
    /// switched on.
    fn from_env() -> Option<ChaosConfig> {
        match std::env::var("CIMON_CHAOS").as_deref() {
            Ok("1") | Ok("on") | Ok("true") => {}
            _ => return None,
        }
        let seed = std::env::var("CIMON_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xC1A05);
        Some(ChaosConfig::with_seed(seed))
    }
}

/// The process-wide chaos configuration (`None` = chaos off).
pub fn config() -> Option<&'static ChaosConfig> {
    static CONFIG: OnceLock<Option<ChaosConfig>> = OnceLock::new();
    CONFIG.get_or_init(ChaosConfig::from_env).as_ref()
}

/// Whether chaos injection is active in this process.
pub fn enabled() -> bool {
    config().is_some()
}

/// SplitMix64 — the same mixer the vendored `rand` shim builds
/// `StdRng` on, reproduced here so a chaos decision needs no RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic decision value for one `(site, index, salt)` point.
fn roll(cfg: &ChaosConfig, site: &str, index: usize, salt: u64) -> u64 {
    let mut h = cfg.seed ^ salt;
    for &b in site.as_bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    splitmix64(h ^ index as u64)
}

/// Whether chaos injects a panic at this `(site, index)` point —
/// exposed so differential tests can predict exactly which rows a
/// chaos sweep will poison.
pub fn panics_at(site: &str, index: usize) -> bool {
    config().is_some_and(|cfg| {
        cfg.panic_one_in != 0 && roll(cfg, site, index, 0x70) % cfg.panic_one_in == 0
    })
}

/// Panic here if chaos selected this `(site, index)` point. Call from
/// inside a `catch_unwind`-isolated worker item only.
pub fn maybe_panic(site: &'static str, index: usize) {
    if panics_at(site, index) {
        panic!("chaos: injected panic at {site}[{index}]");
    }
}

/// Sleep a few milliseconds if chaos selected this point — enough to
/// scramble worker completion order without slowing suites down.
pub fn maybe_delay(site: &'static str, index: usize) {
    if let Some(cfg) = config() {
        if cfg.delay_one_in != 0 && roll(cfg, site, index, 0xD1) % cfg.delay_one_in == 0 {
            let ms = 1 + roll(cfg, site, index, 0xD2) % 5;
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

/// Flip one seeded memory bit of `snapshot` if chaos selected this
/// point, leaving its recorded checksum stale. Returns `true` when a
/// flip was injected — the caller's subsequent `restore` is then
/// guaranteed to fail with `SimError::SnapshotCorrupt`.
pub fn maybe_corrupt_snapshot(
    site: &'static str,
    index: usize,
    snapshot: &mut ProcessorSnapshot,
) -> bool {
    let Some(cfg) = config() else { return false };
    if cfg.corrupt_one_in == 0 || roll(cfg, site, index, 0xC0) % cfg.corrupt_one_in != 0 {
        return false;
    }
    let addr = (roll(cfg, site, index, 0xC1) % 0x1_0000) as u32;
    let bit = (roll(cfg, site, index, 0xC2) % 8) as u8;
    snapshot.corrupt_bit(addr, bit);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic() {
        let cfg = ChaosConfig::with_seed(42);
        assert_eq!(roll(&cfg, "sweep", 7, 0x70), roll(&cfg, "sweep", 7, 0x70));
        assert_ne!(roll(&cfg, "sweep", 7, 0x70), roll(&cfg, "sweep", 8, 0x70));
        assert_ne!(roll(&cfg, "sweep", 7, 0x70), roll(&cfg, "splice", 7, 0x70));
    }

    #[test]
    fn default_rates_fire_somewhere() {
        let cfg = ChaosConfig::with_seed(0xC1A05);
        let fired = (0..64)
            .filter(|&i| {
                cfg.panic_one_in != 0 && roll(&cfg, "sweep", i, 0x70) % cfg.panic_one_in == 0
            })
            .count();
        assert!(fired > 0, "64 points must see at least one injection");
        assert!(fired < 64, "injection must not hit every point");
    }
}
