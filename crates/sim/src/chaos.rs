//! # Self-chaos harness
//!
//! The paper's methodology is fault injection: corrupt the monitored
//! program at seeded random points and check the monitor contains the
//! damage. This module turns that methodology inward on the simulator
//! itself — with `CIMON_CHAOS=1` in the environment, the engine layers
//! inject their own faults at deterministic, seeded points:
//!
//! * **worker panics** in sweep and campaign pools
//!   ([`maybe_panic`]) — exercising `catch_unwind` isolation and
//!   poisoned-row degradation;
//! * **artificial shard delays** in the splice replay pool
//!   ([`maybe_delay`]) — exercising order-independence of the
//!   deterministic stitch;
//! * **snapshot bit-flips** before splice shards restore
//!   ([`maybe_corrupt_snapshot`]) — exercising checksum verification
//!   and the serial-fallback rung of the degradation ladder;
//! * **request corruption** at the serve layer's ingest
//!   ([`maybe_corrupt_request`]) — exercising typed `Protocol`
//!   rejection of garbage instead of a wedged or panicking parser;
//! * **journal bit-flips** as the serve layer persists a result
//!   ([`maybe_flip_journal_bit`]) — exercising per-record CRC
//!   verification and recompute-on-replay after a restart;
//! * **checkpoint-frame bit-flips and torn tails** as the splice layer
//!   spills snapshots to disk ([`maybe_flip_segment_bit`],
//!   [`maybe_torn_segment_tail`]) — exercising the segment scanner's
//!   frame quarantine and the recompute-from-previous spill rung;
//! * **mid-stream connection cuts** while the serve layer streams
//!   sweep rows ([`cuts_stream_at`]) — exercising client reconnect and
//!   row-grain resume.
//!
//! Everything is keyed off `(site, index)` with a SplitMix64 mix of the
//! seed (`CIMON_CHAOS_SEED`, default `0xC1A05`), so a chaos run is
//! reproducible: the same seed injects the same faults at the same grid
//! points, and the differential suites can assert that every row *not*
//! hit by an injection is byte-identical to a clean run.
//!
//! With the variable unset the module is a handful of dead branches —
//! one `OnceLock` read per call site — and injects nothing.

use std::sync::OnceLock;
use std::time::Duration;

use cimon_pipeline::ProcessorSnapshot;

/// Injection configuration, resolved from the environment once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// One in this many sweep/campaign items panics (0 disables).
    pub panic_one_in: u64,
    /// One in this many splice shards sleeps briefly (0 disables).
    pub delay_one_in: u64,
    /// One in this many splice shards sees a bit-flipped snapshot
    /// (0 disables).
    pub corrupt_one_in: u64,
    /// One in this many serve-layer requests is corrupted at ingest
    /// (0 disables).
    pub request_corrupt_one_in: u64,
    /// One in this many serve-layer journal records has a bit flipped
    /// before it is written (0 disables).
    pub journal_flip_one_in: u64,
    /// One in this many spilled checkpoint frames has a bit flipped on
    /// its way to disk (0 disables).
    pub segment_flip_one_in: u64,
    /// One in this many checkpoint segments loses part of its final
    /// frame at close — a simulated torn write (0 disables).
    pub segment_tear_one_in: u64,
    /// One in this many streamed response rows has its connection cut
    /// mid-stream (0 disables).
    pub stream_cut_one_in: u64,
}

impl ChaosConfig {
    /// The default injection rates: aggressive enough that a grid of a
    /// few dozen points sees several of each fault class.
    pub fn with_seed(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_one_in: 5,
            delay_one_in: 4,
            corrupt_one_in: 4,
            request_corrupt_one_in: 6,
            journal_flip_one_in: 4,
            segment_flip_one_in: 5,
            segment_tear_one_in: 7,
            stream_cut_one_in: 5,
        }
    }

    /// Read `CIMON_CHAOS` / `CIMON_CHAOS_SEED`: `None` unless chaos is
    /// switched on.
    fn from_env() -> Option<ChaosConfig> {
        match std::env::var("CIMON_CHAOS").as_deref() {
            Ok("1") | Ok("on") | Ok("true") => {}
            _ => return None,
        }
        let seed = std::env::var("CIMON_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xC1A05);
        Some(ChaosConfig::with_seed(seed))
    }
}

/// The process-wide chaos configuration (`None` = chaos off).
pub fn config() -> Option<&'static ChaosConfig> {
    static CONFIG: OnceLock<Option<ChaosConfig>> = OnceLock::new();
    CONFIG.get_or_init(ChaosConfig::from_env).as_ref()
}

/// Whether chaos injection is active in this process.
pub fn enabled() -> bool {
    config().is_some()
}

/// SplitMix64 — the same mixer the vendored `rand` shim builds
/// `StdRng` on, reproduced here so a chaos decision needs no RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic decision value for one `(site, index, salt)` point.
fn roll(cfg: &ChaosConfig, site: &str, index: usize, salt: u64) -> u64 {
    let mut h = cfg.seed ^ salt;
    for &b in site.as_bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    splitmix64(h ^ index as u64)
}

/// Whether chaos injects a panic at this `(site, index)` point —
/// exposed so differential tests can predict exactly which rows a
/// chaos sweep will poison.
pub fn panics_at(site: &str, index: usize) -> bool {
    config().is_some_and(|cfg| {
        cfg.panic_one_in != 0 && roll(cfg, site, index, 0x70) % cfg.panic_one_in == 0
    })
}

/// Panic here if chaos selected this `(site, index)` point. Call from
/// inside a `catch_unwind`-isolated worker item only.
pub fn maybe_panic(site: &'static str, index: usize) {
    if panics_at(site, index) {
        panic!("chaos: injected panic at {site}[{index}]");
    }
}

/// Sleep a few milliseconds if chaos selected this point — enough to
/// scramble worker completion order without slowing suites down.
pub fn maybe_delay(site: &'static str, index: usize) {
    if let Some(cfg) = config() {
        if cfg.delay_one_in != 0 && roll(cfg, site, index, 0xD1) % cfg.delay_one_in == 0 {
            let ms = 1 + roll(cfg, site, index, 0xD2) % 5;
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

/// Flip one seeded memory bit of `snapshot` if chaos selected this
/// point, leaving its recorded checksum stale. Returns `true` when a
/// flip was injected — the caller's subsequent `restore` is then
/// guaranteed to fail with `SimError::SnapshotCorrupt`.
pub fn maybe_corrupt_snapshot(
    site: &'static str,
    index: usize,
    snapshot: &mut ProcessorSnapshot,
) -> bool {
    let Some(cfg) = config() else { return false };
    if cfg.corrupt_one_in == 0 || roll(cfg, site, index, 0xC0) % cfg.corrupt_one_in != 0 {
        return false;
    }
    let addr = (roll(cfg, site, index, 0xC1) % 0x1_0000) as u32;
    let bit = (roll(cfg, site, index, 0xC2) % 8) as u8;
    snapshot.corrupt_bit(addr, bit);
    true
}

/// Whether chaos corrupts the serve request at ingest index `index` —
/// exposed so differential tests can predict exactly which requests a
/// chaos server will reject with a typed `Protocol` error.
pub fn corrupts_request_at(index: usize) -> bool {
    config().is_some_and(|cfg| {
        cfg.request_corrupt_one_in != 0
            && roll(cfg, "serve-request", index, 0x4E) % cfg.request_corrupt_one_in == 0
    })
}

/// Corrupt a received request line in place if chaos selected this
/// ingest index: the first byte is overwritten with a control
/// character, so the line can no longer parse as a request object and
/// the server's typed `Protocol` rejection path runs. Returns `true`
/// when the corruption was injected.
pub fn maybe_corrupt_request(index: usize, line: &mut [u8]) -> bool {
    if !corrupts_request_at(index) || line.is_empty() {
        return false;
    }
    line[0] = 0x01;
    true
}

/// Whether chaos flips a bit of the serve journal record at append
/// index `index`.
pub fn flips_journal_bit_at(index: usize) -> bool {
    config().is_some_and(|cfg| {
        cfg.journal_flip_one_in != 0
            && roll(cfg, "serve-journal", index, 0x10) % cfg.journal_flip_one_in == 0
    })
}

/// Flip one seeded bit of an encoded journal payload if chaos selected
/// this append index, leaving its recorded CRC stale. Returns `true`
/// when a flip was injected — replay is then guaranteed to drop the
/// record (CRC mismatch or unparseable line) and the server recomputes
/// that result instead of trusting damaged storage.
pub fn maybe_flip_journal_bit(index: usize, payload: &mut [u8]) -> bool {
    let Some(cfg) = config() else { return false };
    if payload.is_empty() || !flips_journal_bit_at(index) {
        return false;
    }
    let pos = (roll(cfg, "serve-journal", index, 0x11) as usize) % payload.len();
    let bit = roll(cfg, "serve-journal", index, 0x12) % 8;
    payload[pos] ^= 1 << bit;
    true
}

/// Whether chaos flips a bit of the spilled checkpoint frame at append
/// index `index` — exposed so differential tests can predict exactly
/// which frames a chaos spill will quarantine on scan.
pub fn flips_segment_at(index: usize) -> bool {
    config().is_some_and(|cfg| {
        cfg.segment_flip_one_in != 0
            && roll(cfg, "ckpt-segment", index, 0x5E) % cfg.segment_flip_one_in == 0
    })
}

/// Flip one seeded bit of an encoded checkpoint frame (header or
/// payload) if chaos selected this append index, leaving its recorded
/// CRCs stale. Returns `true` when a flip was injected — the segment
/// scan is then guaranteed to quarantine the frame (payload hit) or
/// everything from it onward (header hit), and the splice degrades by
/// the documented ladder instead of trusting damaged storage.
pub fn maybe_flip_segment_bit(index: usize, frame: &mut [u8]) -> bool {
    let Some(cfg) = config() else { return false };
    if frame.is_empty() || !flips_segment_at(index) {
        return false;
    }
    let pos = (roll(cfg, "ckpt-segment", index, 0x5F) as usize) % frame.len();
    let bit = roll(cfg, "ckpt-segment", index, 0x60) % 8;
    frame[pos] ^= 1 << bit;
    true
}

/// Whether chaos tears the tail off a checkpoint segment closed with
/// `index` frames — exposed for differential prediction.
pub fn tears_segment_at(index: usize) -> bool {
    config().is_some_and(|cfg| {
        cfg.segment_tear_one_in != 0
            && roll(cfg, "ckpt-segment", index, 0x61) % cfg.segment_tear_one_in == 0
    })
}

/// How many tail bytes chaos shears off a finished checkpoint segment
/// whose final frame is `last_frame_len` bytes long — `None` when this
/// close was not selected. The cut always lands strictly inside the
/// final frame, so the scanner sees a torn tail (never a clean,
/// silently shorter segment).
pub fn maybe_torn_segment_tail(index: usize, last_frame_len: u64) -> Option<u64> {
    let cfg = config()?;
    if last_frame_len < 2 || !tears_segment_at(index) {
        return None;
    }
    Some(1 + roll(cfg, "ckpt-segment", index, 0x62) % (last_frame_len - 1))
}

/// Whether chaos cuts the client connection after streaming the
/// response row at stream index `index` — exposed so resume tests can
/// predict exactly where a chaos stream will drop.
pub fn cuts_stream_at(index: usize) -> bool {
    config().is_some_and(|cfg| {
        cfg.stream_cut_one_in != 0
            && roll(cfg, "serve-stream", index, 0x57) % cfg.stream_cut_one_in == 0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic() {
        let cfg = ChaosConfig::with_seed(42);
        assert_eq!(roll(&cfg, "sweep", 7, 0x70), roll(&cfg, "sweep", 7, 0x70));
        assert_ne!(roll(&cfg, "sweep", 7, 0x70), roll(&cfg, "sweep", 8, 0x70));
        assert_ne!(roll(&cfg, "sweep", 7, 0x70), roll(&cfg, "splice", 7, 0x70));
    }

    #[test]
    fn default_rates_fire_somewhere() {
        let cfg = ChaosConfig::with_seed(0xC1A05);
        let fired = (0..64)
            .filter(|&i| {
                cfg.panic_one_in != 0 && roll(&cfg, "sweep", i, 0x70) % cfg.panic_one_in == 0
            })
            .count();
        assert!(fired > 0, "64 points must see at least one injection");
        assert!(fired < 64, "injection must not hit every point");
    }

    /// The seeded `(site, index)` keying contract is load-bearing: the
    /// differential suites predict injections from it, and the serve
    /// layer's retry path assumes the same key re-rolls the same way.
    /// These golden vectors pin the default seed's decisions — any
    /// change to the mixer, the salts, or the default rates shows up
    /// here before it silently desynchronises a differential test.
    #[test]
    fn default_seed_injection_grid_is_golden() {
        let cfg = ChaosConfig::with_seed(0xC1A05);
        let hits = |site: &str, salt: u64, one_in: u64| -> Vec<usize> {
            (0..24)
                .filter(|&i| one_in != 0 && roll(&cfg, site, i, salt) % one_in == 0)
                .collect()
        };
        assert_eq!(
            hits("sweep", 0x70, cfg.panic_one_in),
            vec![5, 7, 16, 17, 20, 23]
        );
        assert_eq!(hits("serve", 0x70, cfg.panic_one_in), vec![13, 15, 17, 22]);
        assert_eq!(
            hits("serve-request", 0x4E, cfg.request_corrupt_one_in),
            vec![2, 3, 8, 14, 20, 22]
        );
        assert_eq!(
            hits("serve-journal", 0x10, cfg.journal_flip_one_in),
            vec![0, 1, 5, 8, 10, 12, 20, 23]
        );
        assert_eq!(
            hits("ckpt-segment", 0x5E, cfg.segment_flip_one_in),
            vec![12, 15, 16, 17, 20, 23]
        );
        assert_eq!(
            hits("ckpt-segment", 0x61, cfg.segment_tear_one_in),
            vec![7, 16, 22]
        );
        assert_eq!(
            hits("serve-stream", 0x57, cfg.stream_cut_one_in),
            vec![2, 5, 10, 23]
        );
    }

    #[test]
    fn serve_injections_mutate_exactly_when_predicted() {
        // Without CIMON_CHAOS in the environment every decision
        // function is constant-false and the mutators are no-ops.
        if enabled() {
            return;
        }
        let mut line = b"{\"id\":1}".to_vec();
        assert!(!corrupts_request_at(0));
        assert!(!maybe_corrupt_request(0, &mut line));
        assert_eq!(line, b"{\"id\":1}");
        let mut payload = *b"payload";
        assert!(!flips_journal_bit_at(0));
        assert!(!maybe_flip_journal_bit(0, &mut payload));
        assert_eq!(&payload, b"payload");
    }
}
