//! # Durable checkpoint store — CRC-framed snapshot segments
//!
//! The splice layer's fast pass emits a
//! [`ProcessorSnapshot`](cimon_pipeline::ProcessorSnapshot) every few
//! million retired instructions. Held in RAM those snapshots make the
//! splice's memory footprint scale with program length; this module
//! spills them to disk instead, in an append-only *segment* of
//! self-describing frames, so the resident working set is one frame
//! regardless of how long the run is.
//!
//! ## Frame format
//!
//! Every frame is independently verifiable:
//!
//! ```text
//! +--------+--------+--------+--------+----------...----+--------+
//! | MAGIC  |  seq   |  len   |  hcrc  |     payload     |  pcrc  |
//! | 4 B    |  u32   |  u32   |  u32   |     len B       |  u32   |
//! +--------+--------+--------+--------+----------...----+--------+
//! ```
//!
//! All integers little-endian. `hcrc` is a CRC-32 over the first 12
//! header bytes; `pcrc` is a CRC-32 over the payload. `seq` is the
//! frame's append index, so a scan can tell a wrong-file or
//! restarted-writer segment from a clean one.
//!
//! ## Quarantine ladder
//!
//! [`scan`] walks the segment once, sequentially, with a single-frame
//! buffer (no mmap), and classifies every frame:
//!
//! * **Good** — header and payload CRCs verify; the frame is usable.
//! * **Bad payload** — the header verifies but the payload CRC does
//!   not. The length field is trustworthy (it is covered by `hcrc`),
//!   so exactly this frame is quarantined and the scan continues at
//!   the next one.
//! * **Bad header** — the magic, `hcrc`, or `seq` check fails. Nothing
//!   after this point can be framed reliably, so the remainder of the
//!   segment is quarantined wholesale ([`SegmentIndex::desynced`]).
//! * **Torn** — the file ends mid-frame (including a length field
//!   that runs past end-of-file): the classic crash-mid-write tail.
//!   The fragment is quarantined.
//!
//! A quarantined frame never produces bytes; consumers degrade by
//! *recomputing from the previous good checkpoint* (the splice's
//! [`SpliceRung::SplicedSpillRecompute`](crate::SpliceRung) rung), so
//! damaged storage costs parallelism, never correctness.
//!
//! Segments are scratch spill files — recomputable from the program
//! image — so [`SegmentWriter::finish`] syncs file data but does not
//! fsync the parent directory; torn-write *detection* is what matters
//! here, not cross-power-cycle durability. The serve layer's result
//! journal, whose records are not recomputable without re-simulating,
//! carries the stronger guarantee (see `docs/serve.md`).
//!
//! Under `CIMON_CHAOS=1` the writer itself is hostile: appended frames
//! may have one seeded bit flipped ([`chaos::maybe_flip_segment_bit`])
//! and the close may shear bytes off the final frame
//! ([`chaos::maybe_torn_segment_tail`]), so every consumer's
//! quarantine path is exercised by the differential suites.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::chaos;

/// Leading bytes of every frame.
pub const MAGIC: [u8; 4] = *b"CKP1";
/// Frame header: magic + seq + len + header CRC.
pub const HEADER_LEN: usize = 16;
/// Frame trailer: payload CRC.
pub const TRAILER_LEN: usize = 4;

/// The reflected-polynomial remainder of every possible input byte
/// (IEEE 802.3, the same polynomial the monitored pipeline's CRC hash
/// unit and the serve journal use).
const CRC32_TABLE: [u32; 256] = {
    const POLY: u32 = 0xEDB8_8320;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE, reflected) over a byte string.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_continue(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Extend a running CRC-32 with more bytes. `state` is the *raw*
/// register (pass `crc ^ 0xFFFF_FFFF` to continue from a finished
/// [`crc32`] digest); the caller applies the final inversion. The serve
/// layer's per-row CRC chain is built on this.
pub fn crc32_continue(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc
}

/// How a scanned frame classified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameStatus {
    /// Header and payload CRCs verify; [`SegmentReader::read_frame`]
    /// can return its payload.
    Good,
    /// Header verified but the payload CRC did not: this frame is
    /// quarantined, frames after it are still reachable.
    BadPayload,
    /// The header itself failed (magic, CRC, or sequence number): this
    /// frame and everything after it is quarantined.
    BadHeader,
    /// The file ended mid-frame — a torn final write.
    Torn,
}

/// One frame's scan result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameInfo {
    /// Append index (equals the position in [`SegmentIndex::frames`]).
    pub seq: u32,
    /// Byte offset of the frame header in the segment file.
    pub offset: u64,
    /// Payload length in bytes (0 when the header was unreadable).
    pub payload_len: u32,
    /// Classification.
    pub status: FrameStatus,
}

impl FrameInfo {
    /// Whether this frame's payload is usable.
    pub fn is_good(&self) -> bool {
        self.status == FrameStatus::Good
    }
}

/// The result of scanning one segment file.
#[derive(Clone, Debug, Default)]
pub struct SegmentIndex {
    /// Every frame (or unreadable region) in file order. At most one
    /// trailing entry is `BadHeader` or `Torn`.
    pub frames: Vec<FrameInfo>,
    /// Frames whose payload is usable.
    pub good: usize,
    /// Frames (or tail regions) quarantined by the ladder.
    pub quarantined: usize,
    /// Whether the file ended mid-frame.
    pub torn_tail: bool,
    /// Whether a bad header forced wholesale quarantine of the rest of
    /// the file.
    pub desynced: bool,
    /// Total file size in bytes.
    pub bytes: u64,
}

/// The append side of a segment. One writer per segment; frames are
/// written sequentially and the segment is immutable after
/// [`SegmentWriter::finish`].
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    next_seq: u32,
    bytes: u64,
    last_frame_len: u64,
}

impl SegmentWriter {
    /// Create (truncating) the segment at `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the file.
    pub fn create(path: &Path) -> std::io::Result<SegmentWriter> {
        Ok(SegmentWriter {
            file: File::create(path)?,
            next_seq: 0,
            bytes: 0,
            last_frame_len: 0,
        })
    }

    /// Append one payload as a framed record, returning its sequence
    /// number. The payload is framed and written immediately — the
    /// writer holds no snapshot bytes across calls, which is what keeps
    /// the spill's working set bounded. Under `CIMON_CHAOS=1` one
    /// seeded bit of the encoded frame may be flipped first.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the file.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<u32> {
        let seq = self.next_seq;
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let hcrc = crc32(&frame[..12]);
        frame.extend_from_slice(&hcrc.to_le_bytes());
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        chaos::maybe_flip_segment_bit(seq as usize, &mut frame);
        self.file.write_all(&frame)?;
        self.next_seq += 1;
        self.bytes += frame.len() as u64;
        self.last_frame_len = frame.len() as u64;
        Ok(seq)
    }

    /// Frames appended so far.
    pub fn frames(&self) -> u32 {
        self.next_seq
    }

    /// Bytes written so far.
    pub fn len_bytes(&self) -> u64 {
        self.bytes
    }

    /// Flush and sync the segment, consuming the writer. Returns the
    /// final file size. Under `CIMON_CHAOS=1` the close may shear a
    /// seeded number of bytes off the final frame — the simulated
    /// crash-mid-write whose detection the scanner's torn-tail rung
    /// exists for.
    ///
    /// # Errors
    ///
    /// Any I/O error from the flush or sync.
    pub fn finish(mut self) -> std::io::Result<u64> {
        self.file.flush()?;
        self.file.sync_data()?;
        if let Some(drop) =
            chaos::maybe_torn_segment_tail(self.next_seq as usize, self.last_frame_len)
        {
            let keep = self.bytes.saturating_sub(drop);
            self.file.set_len(keep)?;
            self.file.sync_data()?;
            return Ok(keep);
        }
        Ok(self.bytes)
    }
}

/// Scan a segment sequentially, classifying every frame without
/// retaining any payload — the working set is one frame's bytes, and
/// nothing is mapped.
///
/// # Errors
///
/// Any I/O error reading the file. Corruption is *not* an error: it is
/// reported per-frame in the returned [`SegmentIndex`].
pub fn scan(path: &Path) -> std::io::Result<SegmentIndex> {
    let mut file = File::open(path)?;
    let total = file.metadata()?.len();
    let mut index = SegmentIndex {
        bytes: total,
        ..SegmentIndex::default()
    };
    let mut offset = 0u64;
    let mut buf: Vec<u8> = Vec::new();
    while offset < total {
        let seq = index.frames.len() as u32;
        let remaining = total - offset;
        if remaining < HEADER_LEN as u64 {
            index.frames.push(FrameInfo {
                seq,
                offset,
                payload_len: 0,
                status: FrameStatus::Torn,
            });
            index.torn_tail = true;
            index.quarantined += 1;
            break;
        }
        let mut header = [0u8; HEADER_LEN];
        file.read_exact(&mut header)?;
        let stored_seq = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        let hcrc = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
        let header_ok = header[..4] == MAGIC && hcrc == crc32(&header[..12]) && stored_seq == seq;
        if !header_ok {
            index.frames.push(FrameInfo {
                seq,
                offset,
                payload_len: 0,
                status: FrameStatus::BadHeader,
            });
            index.desynced = true;
            index.quarantined += 1;
            break;
        }
        let body = u64::from(len) + TRAILER_LEN as u64;
        if remaining - (HEADER_LEN as u64) < body {
            // The length field outruns the file: a torn final write.
            index.frames.push(FrameInfo {
                seq,
                offset,
                payload_len: len,
                status: FrameStatus::Torn,
            });
            index.torn_tail = true;
            index.quarantined += 1;
            break;
        }
        buf.resize(len as usize + TRAILER_LEN, 0);
        file.read_exact(&mut buf)?;
        let pcrc = u32::from_le_bytes([
            buf[len as usize],
            buf[len as usize + 1],
            buf[len as usize + 2],
            buf[len as usize + 3],
        ]);
        let status = if crc32(&buf[..len as usize]) == pcrc {
            index.good += 1;
            FrameStatus::Good
        } else {
            index.quarantined += 1;
            FrameStatus::BadPayload
        };
        index.frames.push(FrameInfo {
            seq,
            offset,
            payload_len: len,
            status,
        });
        offset += HEADER_LEN as u64 + body;
    }
    Ok(index)
}

/// The random-access read side. Each consumer (splice shard, campaign
/// worker) opens its own reader — its own `File`, its own cursor — so
/// concurrent reads share nothing.
#[derive(Debug)]
pub struct SegmentReader {
    file: File,
}

impl SegmentReader {
    /// Open the segment for reading.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn open(path: &Path) -> std::io::Result<SegmentReader> {
        Ok(SegmentReader {
            file: File::open(path)?,
        })
    }

    /// Read one frame's payload, re-verifying its CRC (the frame may
    /// have rotted since the scan). Returns `Ok(None)` if the frame is
    /// not [`FrameStatus::Good`] or no longer verifies — the caller's
    /// quarantine path, not an I/O failure.
    ///
    /// # Errors
    ///
    /// Any I/O error reading the file.
    pub fn read_frame(&mut self, frame: &FrameInfo) -> std::io::Result<Option<Vec<u8>>> {
        if !frame.is_good() {
            return Ok(None);
        }
        self.file
            .seek(SeekFrom::Start(frame.offset + HEADER_LEN as u64))?;
        let mut payload = vec![0u8; frame.payload_len as usize];
        self.file.read_exact(&mut payload)?;
        let mut trailer = [0u8; TRAILER_LEN];
        self.file.read_exact(&mut trailer)?;
        if crc32(&payload) != u32::from_le_bytes(trailer) {
            return Ok(None);
        }
        Ok(Some(payload))
    }
}

/// A unique scratch path for one spill segment, under the system temp
/// directory. The file is deleted when the handle drops, so a spilled
/// splice leaves nothing behind even on the error paths.
#[derive(Debug)]
pub struct ScratchSegment {
    path: PathBuf,
}

impl ScratchSegment {
    /// Reserve a fresh scratch path (the file itself is created by the
    /// [`SegmentWriter`]).
    pub fn new(label: &str) -> ScratchSegment {
        static N: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "cimon-ckpt-{}-{}-{label}.seg",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed),
        ));
        ScratchSegment { path }
    }

    /// The segment file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchSegment {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> ScratchSegment {
        ScratchSegment::new(name)
    }

    fn write_segment(path: &Path, payloads: &[&[u8]]) {
        let mut w = SegmentWriter::create(path).unwrap();
        for p in payloads {
            w.append(p).unwrap();
        }
        w.finish().unwrap();
    }

    /// Tests that write through the chaos injection sites and then
    /// assert exact on-disk structure skip under `CIMON_CHAOS=1` — the
    /// splice differential suites own the chaos-mode spill story.
    fn chaos_mode() -> bool {
        chaos::enabled()
    }

    #[test]
    fn crc_is_the_ieee_polynomial() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        // Continuation matches one-shot.
        let mid = crc32_continue(0xFFFF_FFFF, b"12345");
        assert_eq!(crc32_continue(mid, b"6789") ^ 0xFFFF_FFFF, 0xCBF4_3926);
    }

    #[test]
    fn round_trips_every_frame() {
        if chaos_mode() {
            return;
        }
        let seg = scratch("roundtrip");
        let payloads: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; 10 + i as usize * 7]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        write_segment(seg.path(), &refs);
        let index = scan(seg.path()).unwrap();
        assert_eq!(index.good, 5);
        assert_eq!(index.quarantined, 0);
        assert!(!index.torn_tail);
        assert!(!index.desynced);
        let mut reader = SegmentReader::open(seg.path()).unwrap();
        for (i, frame) in index.frames.iter().enumerate() {
            assert_eq!(frame.seq as usize, i);
            assert!(frame.is_good());
            let got = reader.read_frame(frame).unwrap().unwrap();
            assert_eq!(got, payloads[i]);
        }
    }

    #[test]
    fn scan_of_zero_length_file_is_empty() {
        let seg = scratch("empty");
        File::create(seg.path()).unwrap();
        let index = scan(seg.path()).unwrap();
        assert!(index.frames.is_empty());
        assert_eq!(index.good, 0);
        assert!(!index.torn_tail);
    }

    #[test]
    fn torn_tail_quarantines_only_the_last_frame() {
        if chaos_mode() {
            return;
        }
        let seg = scratch("torn");
        write_segment(seg.path(), &[b"alpha", b"bravo", b"charlie"]);
        let full = std::fs::metadata(seg.path()).unwrap().len();
        // Shear 3 bytes off the final frame.
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(seg.path())
            .unwrap();
        f.set_len(full - 3).unwrap();
        drop(f);
        let index = scan(seg.path()).unwrap();
        assert_eq!(index.good, 2);
        assert_eq!(index.quarantined, 1);
        assert!(index.torn_tail);
        assert_eq!(index.frames[2].status, FrameStatus::Torn);
        assert!(index.frames[0].is_good() && index.frames[1].is_good());
    }

    #[test]
    fn header_only_torn_tail_is_detected() {
        if chaos_mode() {
            return;
        }
        let seg = scratch("torn-header");
        write_segment(seg.path(), &[b"only"]);
        // Append half a header: a crash between header and payload.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(seg.path())
            .unwrap();
        f.write_all(&MAGIC).unwrap();
        f.write_all(&[9, 9]).unwrap();
        drop(f);
        let index = scan(seg.path()).unwrap();
        assert_eq!(index.good, 1);
        assert!(index.torn_tail);
        assert_eq!(index.frames[1].status, FrameStatus::Torn);
    }

    #[test]
    fn length_header_past_end_of_file_is_torn_not_a_crash() {
        if chaos_mode() {
            return;
        }
        let seg = scratch("len-overrun");
        // A single frame whose (CRC-valid) header claims a payload far
        // larger than the file.
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&0u32.to_le_bytes());
        header.extend_from_slice(&0xFFFF_0000u32.to_le_bytes());
        let hcrc = crc32(&header);
        header.extend_from_slice(&hcrc.to_le_bytes());
        header.extend_from_slice(b"short");
        std::fs::write(seg.path(), &header).unwrap();
        let index = scan(seg.path()).unwrap();
        assert_eq!(index.good, 0);
        assert!(index.torn_tail);
        assert_eq!(index.frames[0].status, FrameStatus::Torn);
        assert_eq!(index.frames[0].payload_len, 0xFFFF_0000);
    }

    #[test]
    fn payload_flip_quarantines_exactly_that_frame() {
        if chaos_mode() {
            return;
        }
        let seg = scratch("payload-flip");
        write_segment(seg.path(), &[b"alpha", b"bravo", b"charlie"]);
        let mut bytes = std::fs::read(seg.path()).unwrap();
        // Frame 1's payload starts after frame 0 (16+5+4) plus its own
        // header.
        let pos = (HEADER_LEN + 5 + TRAILER_LEN) + HEADER_LEN + 2;
        bytes[pos] ^= 0x20;
        std::fs::write(seg.path(), &bytes).unwrap();
        let index = scan(seg.path()).unwrap();
        assert_eq!(index.good, 2);
        assert_eq!(index.quarantined, 1);
        assert!(!index.desynced);
        assert_eq!(index.frames[1].status, FrameStatus::BadPayload);
        assert!(index.frames[0].is_good() && index.frames[2].is_good());
        // The quarantined frame yields no bytes.
        let mut reader = SegmentReader::open(seg.path()).unwrap();
        assert!(reader.read_frame(&index.frames[1]).unwrap().is_none());
        assert_eq!(
            reader.read_frame(&index.frames[2]).unwrap().unwrap(),
            b"charlie"
        );
    }

    #[test]
    fn header_flip_quarantines_the_rest_of_the_segment() {
        if chaos_mode() {
            return;
        }
        let seg = scratch("header-flip");
        write_segment(seg.path(), &[b"alpha", b"bravo", b"charlie"]);
        let mut bytes = std::fs::read(seg.path()).unwrap();
        // Flip a bit in frame 1's length field.
        let pos = (HEADER_LEN + 5 + TRAILER_LEN) + 9;
        bytes[pos] ^= 0x01;
        std::fs::write(seg.path(), &bytes).unwrap();
        let index = scan(seg.path()).unwrap();
        assert_eq!(index.good, 1);
        assert!(index.desynced);
        assert_eq!(index.frames.len(), 2);
        assert_eq!(index.frames[1].status, FrameStatus::BadHeader);
    }

    #[test]
    fn rot_between_scan_and_read_is_caught() {
        if chaos_mode() {
            return;
        }
        let seg = scratch("late-rot");
        write_segment(seg.path(), &[b"alpha"]);
        let index = scan(seg.path()).unwrap();
        assert!(index.frames[0].is_good());
        let mut bytes = std::fs::read(seg.path()).unwrap();
        bytes[HEADER_LEN + 1] ^= 0x08;
        std::fs::write(seg.path(), &bytes).unwrap();
        let mut reader = SegmentReader::open(seg.path()).unwrap();
        assert!(reader.read_frame(&index.frames[0]).unwrap().is_none());
    }

    #[test]
    fn scratch_segment_cleans_up_on_drop() {
        let seg = scratch("cleanup");
        write_segment(seg.path(), &[b"x"]);
        let path = seg.path().to_path_buf();
        assert!(path.exists());
        drop(seg);
        assert!(!path.exists());
    }
}
