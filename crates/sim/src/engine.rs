//! # The parallel experiment engine
//!
//! The paper's evaluation is a grid of (workload × IHT size × hash
//! algorithm × refill policy) runs. This module executes such grids the
//! way a results pipeline should:
//!
//! * **[`Artifact`]** — a program prepared once: the image behind an
//!   [`Arc`], with every generated FHT cached per `(hash algo, seed)`
//!   pair. All grid points over one workload share one assembly and one
//!   static analysis.
//! * **[`Experiment`]** — one grid point: an artifact plus a
//!   [`SimConfig`] (or a baseline run).
//! * **[`Sweep`]** — an ordered list of experiments executed on a
//!   [`std::thread::scope`] worker pool. Results come back as
//!   [`ResultRow`]s in *exactly* the order the experiments were pushed,
//!   regardless of which worker finished first, so a parallel sweep is
//!   byte-identical to [`Sweep::run_serial`].
//!
//! ```
//! use std::sync::Arc;
//! use cimon_sim::engine::{Artifact, Sweep};
//! use cimon_sim::SimConfig;
//!
//! let prog = cimon_asm::assemble("
//!     .text
//! main:
//!     li $t0, 6
//! loop:
//!     addiu $t0, $t0, -1
//!     bnez $t0, loop
//!     li $a0, 0
//!     li $v0, 10
//!     syscall
//! ").unwrap();
//!
//! let artifact = Artifact::new("spin", Arc::new(prog.image), Some(0));
//! let mut sweep = Sweep::new();
//! sweep.baseline(artifact.clone());
//! for entries in [1, 8, 16, 32] {
//!     sweep.monitored(artifact.clone(), SimConfig::with_entries(entries));
//! }
//! let rows = sweep.run().unwrap();
//! assert_eq!(rows.len(), 5);
//! assert_eq!(rows, sweep.run_serial().unwrap());
//! assert_eq!(artifact.cached_fhts(), 1); // one FHT served all grid points
//! ```

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use cimon_core::{HashAlgoKind, SimError};
use cimon_hashgen::{static_fht, HashGenError};
use cimon_mem::ProgramImage;
use cimon_os::FullHashTable;
use cimon_pipeline::{BlockCache, PredecodedImage, RunOutcome};

use crate::{chaos, run_baseline_prepared, run_monitored_prepared, RunReport, SimConfig};

/// A workload prepared for the grid: image shared behind an [`Arc`],
/// FHTs generated once per `(hash algo, seed)` and cached, the image
/// predecoded once for every grid point's fetch fast path, and the
/// predecoded image grouped once into basic blocks for block dispatch.
pub struct Artifact {
    name: String,
    image: Arc<ProgramImage>,
    expected_exit: Option<u32>,
    fhts: Mutex<HashMap<(HashAlgoKind, u32), Arc<FullHashTable>>>,
    predecoded: OnceLock<Arc<PredecodedImage>>,
    blocks: OnceLock<Arc<BlockCache>>,
}

impl std::fmt::Debug for Artifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Artifact")
            .field("name", &self.name)
            .field("expected_exit", &self.expected_exit)
            .field("cached_fhts", &self.cached_fhts())
            .finish()
    }
}

impl Artifact {
    /// Wrap an assembled image. `expected_exit` (when known) lets result
    /// consumers verify runs ended cleanly.
    pub fn new(
        name: impl Into<String>,
        image: Arc<ProgramImage>,
        expected_exit: Option<u32>,
    ) -> Arc<Artifact> {
        Arc::new(Artifact {
            name: name.into(),
            image,
            expected_exit,
            fhts: Mutex::new(HashMap::new()),
            predecoded: OnceLock::new(),
            blocks: OnceLock::new(),
        })
    }

    /// The workload's name as it appears in result rows.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared program image.
    pub fn image(&self) -> &Arc<ProgramImage> {
        &self.image
    }

    /// The exit code a clean run must produce, when known.
    pub fn expected_exit(&self) -> Option<u32> {
        self.expected_exit
    }

    /// The FHT for `(algo, seed)` — statically generated on first use,
    /// served from the cache afterwards.
    ///
    /// # Errors
    ///
    /// Propagates [`HashGenError`] from the static analyser.
    pub fn fht(&self, algo: HashAlgoKind, seed: u32) -> Result<Arc<FullHashTable>, HashGenError> {
        if let Some(fht) = self.fht_cache().get(&(algo, seed)) {
            return Ok(fht.clone());
        }
        let (fht, _) = static_fht(&self.image, &[], algo, seed)?;
        let fht = Arc::new(fht);
        // Two threads may have raced to generate; keep the first insert
        // so every grid point shares one canonical table.
        Ok(self.fht_cache().entry((algo, seed)).or_insert(fht).clone())
    }

    /// How many distinct FHTs this artifact has generated so far.
    pub fn cached_fhts(&self) -> usize {
        self.fht_cache().len()
    }

    /// The FHT cache, with lock poisoning recovered: the map is only
    /// ever inserted into, so a panic mid-insert leaves it valid.
    fn fht_cache(
        &self,
    ) -> std::sync::MutexGuard<'_, HashMap<(HashAlgoKind, u32), Arc<FullHashTable>>> {
        self.fhts.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The image predecoded once, shared by every grid point over this
    /// workload (the processor's decode fast path).
    pub fn predecoded(&self) -> Arc<PredecodedImage> {
        self.predecoded
            .get_or_init(|| Arc::new(PredecodedImage::new(&self.image)))
            .clone()
    }

    /// The predecoded image grouped into basic blocks once, shared by
    /// every grid point over this workload (the processor's block
    /// dispatch fast path). Cached beside the FHTs and the predecoded
    /// image.
    pub fn block_cache(&self) -> Arc<BlockCache> {
        self.blocks
            .get_or_init(|| Arc::new(BlockCache::new(self.predecoded())))
            .clone()
    }
}

/// One grid point: a prepared artifact run under one configuration.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// The workload to run.
    pub artifact: Arc<Artifact>,
    /// Monitored (CIC per `config`) or baseline (no monitor).
    pub monitored: bool,
    /// The experiment-level knobs (only `max_cycles` applies when
    /// `monitored` is false).
    pub config: SimConfig,
}

impl Experiment {
    /// A baseline (unmonitored) run of the artifact.
    pub fn baseline(artifact: Arc<Artifact>) -> Experiment {
        Experiment {
            artifact,
            monitored: false,
            config: SimConfig::default(),
        }
    }

    /// A monitored run of the artifact under `config`.
    pub fn monitored(artifact: Arc<Artifact>, config: SimConfig) -> Experiment {
        Experiment {
            artifact,
            monitored: true,
            config,
        }
    }

    /// Execute this experiment and report one result row.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] from FHT generation on monitored runs whose
    /// table is not already cached.
    pub fn run(&self) -> Result<ResultRow, SimError> {
        let predecoded = self.artifact.predecoded();
        let blocks = self.artifact.block_cache();
        let (report, fht_entries) = if self.monitored {
            let fht = self
                .artifact
                .fht(self.config.hash_algo, self.config.hash_seed)?;
            let entries = fht.len();
            (
                run_monitored_prepared(&self.artifact.image, fht, &self.config, predecoded, blocks),
                entries,
            )
        } else {
            (
                run_baseline_prepared(
                    &self.artifact.image,
                    self.config.max_cycles,
                    self.config.max_wall,
                    predecoded,
                    blocks,
                ),
                0,
            )
        };
        Ok(ResultRow::new(self, &report, fht_entries))
    }
}

/// How a grid point's row came to be: a real run, a localized failure,
/// or a watchdog timeout. Anything but [`RowStatus::Ok`] means the
/// row's numeric fields are not architecturally meaningful.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RowStatus {
    /// The run completed and the row's numbers are real.
    Ok,
    /// The experiment failed — a worker panic, a hash-generation error,
    /// a corrupt snapshot — and the sweep degraded it to this poisoned
    /// row instead of dying.
    Failed(SimError),
    /// The run was stopped by the wall-clock watchdog
    /// ([`crate::SimConfig::max_wall`]).
    TimedOut,
}

impl RowStatus {
    /// Short machine-readable tag (`"ok"`, `"failed"`, `"timed-out"`).
    pub fn kind(&self) -> &'static str {
        match self {
            RowStatus::Ok => "ok",
            RowStatus::Failed(_) => "failed",
            RowStatus::TimedOut => "timed-out",
        }
    }
}

/// One machine-readable grid result (the unit the CSV/JSON writers in
/// `cimon-bench` serialise).
#[derive(Clone, Debug, PartialEq)]
pub struct ResultRow {
    /// Workload name.
    pub workload: String,
    /// Exit code a clean run must produce, when the artifact knows it.
    pub expected_exit: Option<u32>,
    /// Whether the run was monitored.
    pub monitored: bool,
    /// IHT entries (0 on baseline rows).
    pub iht_entries: usize,
    /// Hash algorithm (meaningful on monitored rows).
    pub hash_algo: HashAlgoKind,
    /// Hash seed.
    pub hash_seed: u32,
    /// Refill policy name (`"none"` on baseline rows).
    pub policy: &'static str,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Instructions committed.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Cycles stalled in monitoring exceptions.
    pub monitor_stall_cycles: u64,
    /// Block checks performed.
    pub checks: u64,
    /// Checks that hit.
    pub hits: u64,
    /// Checks that missed.
    pub misses: u64,
    /// Checks that mismatched.
    pub mismatches: u64,
    /// IHT miss rate in percent.
    pub miss_rate_percent: f64,
    /// FHT entries generated for the program (0 on baseline rows).
    pub fht_entries: usize,
    /// Whether the row holds a real run, a localized failure, or a
    /// watchdog timeout. On [`RowStatus::Failed`] rows every counter is
    /// zero and `outcome` holds a [`RunOutcome::Watchdog`] placeholder —
    /// the status (and the [`SimError`] it carries) is authoritative.
    pub status: RowStatus,
}

impl ResultRow {
    fn new(experiment: &Experiment, report: &RunReport, fht_entries: usize) -> ResultRow {
        let cic = report.stats.cic.unwrap_or_default();
        let status = if report.outcome == RunOutcome::Watchdog {
            RowStatus::TimedOut
        } else {
            RowStatus::Ok
        };
        ResultRow {
            workload: experiment.artifact.name.clone(),
            expected_exit: experiment.artifact.expected_exit,
            monitored: experiment.monitored,
            iht_entries: if experiment.monitored {
                experiment.config.iht_entries
            } else {
                0
            },
            hash_algo: experiment.config.hash_algo,
            hash_seed: experiment.config.hash_seed,
            policy: if experiment.monitored {
                experiment.config.policy.name()
            } else {
                "none"
            },
            outcome: report.outcome,
            instructions: report.stats.instructions,
            cycles: report.stats.cycles,
            monitor_stall_cycles: report.stats.monitor_stall_cycles,
            checks: cic.checks,
            hits: cic.hits,
            misses: cic.misses,
            mismatches: cic.mismatches,
            miss_rate_percent: report.miss_rate_percent,
            fht_entries,
            status,
        }
    }

    /// A poisoned row standing in for an experiment that never produced
    /// a result: a panicking worker, a hash-generation failure, a
    /// corrupt snapshot. Every counter is zero, the outcome is a
    /// placeholder, and [`ResultRow::status`] carries the typed error.
    pub fn poisoned(experiment: &Experiment, error: SimError) -> ResultRow {
        ResultRow {
            workload: experiment.artifact.name.clone(),
            expected_exit: experiment.artifact.expected_exit,
            monitored: experiment.monitored,
            iht_entries: if experiment.monitored {
                experiment.config.iht_entries
            } else {
                0
            },
            hash_algo: experiment.config.hash_algo,
            hash_seed: experiment.config.hash_seed,
            policy: if experiment.monitored {
                experiment.config.policy.name()
            } else {
                "none"
            },
            outcome: RunOutcome::Watchdog,
            instructions: 0,
            cycles: 0,
            monitor_stall_cycles: 0,
            checks: 0,
            hits: 0,
            misses: 0,
            mismatches: 0,
            miss_rate_percent: 0.0,
            fht_entries: 0,
            status: RowStatus::Failed(error),
        }
    }

    /// Whether the run completed, exited with the artifact's expected
    /// code, and raised no integrity mismatch.
    pub fn is_clean(&self) -> bool {
        self.status == RowStatus::Ok
            && self.mismatches == 0
            && match (self.expected_exit, self.outcome) {
                (Some(want), RunOutcome::Exited { code }) => code == want,
                (None, RunOutcome::Exited { .. }) => true,
                _ => false,
            }
    }
}

/// An ordered batch of experiments executed on a worker pool.
#[derive(Clone, Debug, Default)]
pub struct Sweep {
    experiments: Vec<Experiment>,
    workers: Option<usize>,
}

impl Sweep {
    /// An empty sweep.
    pub fn new() -> Sweep {
        Sweep::default()
    }

    /// Cap the worker pool (default: one worker per available core).
    pub fn workers(&mut self, n: usize) -> &mut Sweep {
        self.workers = Some(n.max(1));
        self
    }

    /// Append one experiment.
    pub fn push(&mut self, experiment: Experiment) -> &mut Sweep {
        self.experiments.push(experiment);
        self
    }

    /// Append a baseline run.
    pub fn baseline(&mut self, artifact: Arc<Artifact>) -> &mut Sweep {
        self.push(Experiment::baseline(artifact))
    }

    /// Append a monitored run.
    pub fn monitored(&mut self, artifact: Arc<Artifact>, config: SimConfig) -> &mut Sweep {
        self.push(Experiment::monitored(artifact, config))
    }

    /// Append the full cross product `artifacts × algos × sizes` over a
    /// base configuration, workload-major (the paper's figure order).
    pub fn grid(
        &mut self,
        artifacts: &[Arc<Artifact>],
        sizes: &[usize],
        algos: &[HashAlgoKind],
        base: SimConfig,
    ) -> &mut Sweep {
        for artifact in artifacts {
            for &hash_algo in algos {
                for &iht_entries in sizes {
                    self.monitored(
                        artifact.clone(),
                        SimConfig {
                            iht_entries,
                            hash_algo,
                            ..base
                        },
                    );
                }
            }
        }
        self
    }

    /// The experiments queued so far, in execution/result order.
    pub fn experiments(&self) -> &[Experiment] {
        &self.experiments
    }

    /// Number of queued experiments.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// Execute every experiment on the worker pool and return the rows
    /// in push order.
    ///
    /// A failing grid point — a panicking monitor plane, a watchdog
    /// timeout, a hash-generation error — never fails the sweep: its
    /// row comes back poisoned ([`RowStatus::Failed`] /
    /// [`RowStatus::TimedOut`]) while every other row is byte-identical
    /// to what a clean serial run produces.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] only for failures that precede the pool
    /// (FHT generation is done up front, serially).
    pub fn run(&self) -> Result<Vec<ResultRow>, SimError> {
        self.run_with_workers(self.workers.unwrap_or_else(default_workers))
    }

    /// Execute every experiment on the calling thread, in order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] from up-front FHT generation.
    pub fn run_serial(&self) -> Result<Vec<ResultRow>, SimError> {
        self.run_with_workers(1)
    }

    /// Execute with an explicit worker count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] from up-front FHT generation.
    pub fn run_with_workers(&self, workers: usize) -> Result<Vec<ResultRow>, SimError> {
        // Generate every needed FHT once, serially, so (a) generation
        // errors surface before any thread spawns and (b) each distinct
        // (artifact, algo, seed) is analysed exactly once.
        for e in &self.experiments {
            if e.monitored {
                e.artifact.fht(e.config.hash_algo, e.config.hash_seed)?;
            }
        }
        let rows = parallel_map_isolated(&self.experiments, workers, "sweep", |i, e| {
            chaos::maybe_panic("sweep", i);
            // The FHT cache was prebuilt above, so per-item errors are
            // exotic (a racing cache eviction would be a bug, not a
            // row); degrade them to poisoned rows all the same.
            e.run().unwrap_or_else(|err| ResultRow::poisoned(e, err))
        });
        Ok(rows
            .into_iter()
            .zip(&self.experiments)
            .map(|(row, e)| row.unwrap_or_else(|err| ResultRow::poisoned(e, err)))
            .collect())
    }
}

/// One worker per available core (at least one).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Deterministically-ordered parallel map: applies `f` to every item on
/// a scoped worker pool and returns results in item order, exactly as a
/// serial `items.iter().enumerate().map(..)` would. With `workers <= 1`
/// it *is* that serial map (no threads are spawned).
///
/// Each item runs under `catch_unwind`, so one panicking item no longer
/// tears the scope (and its sibling workers) down mid-flight: every
/// other item still completes, and the caught panic re-raises — typed —
/// only after the pool has drained. Callers that want the panic as a
/// value instead use [`parallel_map_isolated`].
pub fn parallel_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let rows = parallel_map_isolated(items, workers, "parallel-map", f);
    rows.into_iter()
        .map(|row| row.unwrap_or_else(|err| panic!("{err}")))
        .collect()
}

/// [`parallel_map`] with per-item panic isolation surfaced to the
/// caller: a panicking item yields `Err(SimError::WorkerPanic)` in its
/// slot (tagged with `site`) while every other item completes normally.
/// The engine layers build their poisoned-row / quarantine degradation
/// on this.
pub fn parallel_map_isolated<T, U, F>(
    items: &[T],
    workers: usize,
    site: &'static str,
    f: F,
) -> Vec<Result<U, SimError>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let run_one = |i: usize, item: &T| {
        catch_unwind(AssertUnwindSafe(|| f(i, item)))
            .map_err(|payload| SimError::from_panic(site, payload.as_ref()))
    };
    let workers = workers.clamp(1, items.len().max(1));
    if workers == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| run_one(i, t))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<U, SimError>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let value = run_one(i, &items[i]);
                // A sibling worker's panic is caught above, so the only
                // way this lock is poisoned is a panic in `Some(value)`
                // itself — a zero-sized write; recover the guard.
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| unreachable!("every slot is filled once the scope joins"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimon_asm::assemble;

    fn artifact() -> Arc<Artifact> {
        let prog = assemble(
            "
            .text
        main:
            li   $t0, 25
            li   $t1, 0
        loop:
            addu $t1, $t1, $t0
            addiu $t0, $t0, -1
            bnez $t0, loop
            move $a0, $t1
            li   $v0, 10
            syscall
        ",
        )
        .unwrap();
        Artifact::new("sumloop", Arc::new(prog.image), Some(325))
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(&items, 1, |i, v| (i as u64) * 1000 + v * v);
        let parallel = parallel_map(&items, 8, |i, v| (i as u64) * 1000 + v * v);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 100);
    }

    #[test]
    fn parallel_map_empty_and_tiny() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, v| *v).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |_, v| v + 1), vec![8]);
    }

    #[test]
    fn artifact_caches_one_fht_per_algo() {
        let a = artifact();
        let f1 = a.fht(HashAlgoKind::Xor, 0).unwrap();
        let f2 = a.fht(HashAlgoKind::Xor, 0).unwrap();
        assert!(Arc::ptr_eq(&f1, &f2), "same table must be shared");
        let f3 = a.fht(HashAlgoKind::Crc32, 0).unwrap();
        assert!(!Arc::ptr_eq(&f1, &f3));
        assert_eq!(a.cached_fhts(), 2);
    }

    #[test]
    fn artifact_predecodes_once_and_shares() {
        let a = artifact();
        let p1 = a.predecoded();
        let p2 = a.predecoded();
        assert!(Arc::ptr_eq(&p1, &p2), "predecode must be cached");
        assert_eq!(p1.base(), a.image().text.base);
        assert_eq!(p1.len(), a.image().text.bytes.len() / 4);
    }

    #[test]
    fn artifact_groups_blocks_once_and_shares() {
        let a = artifact();
        let b1 = a.block_cache();
        let b2 = a.block_cache();
        assert!(Arc::ptr_eq(&b1, &b2), "block cache must be cached");
        // Built over the same predecoded image the artifact shares.
        assert!(Arc::ptr_eq(b1.image(), &a.predecoded()));
        assert_eq!(b1.len(), a.predecoded().len());
        assert!(b1.block_count() > 0);
    }

    #[test]
    fn sweep_parallel_matches_serial() {
        let a = artifact();
        let mut sweep = Sweep::new();
        sweep.baseline(a.clone());
        sweep.grid(
            std::slice::from_ref(&a),
            &[1, 8, 16, 32],
            &[HashAlgoKind::Xor, HashAlgoKind::Crc32],
            SimConfig::default(),
        );
        assert_eq!(sweep.len(), 9);
        let parallel = sweep.run().unwrap();
        let serial = sweep.run_serial().unwrap();
        assert_eq!(parallel, serial);
        assert!(parallel.iter().all(|r| r.is_clean()), "{parallel:?}");
        // One FHT per algorithm, shared across the four table sizes.
        assert_eq!(a.cached_fhts(), 2);
        // Baseline row carries no monitor numbers.
        assert_eq!(parallel[0].iht_entries, 0);
        assert_eq!(parallel[0].policy, "none");
        assert_eq!(parallel[0].checks, 0);
    }

    #[test]
    fn result_rows_follow_push_order() {
        let a = artifact();
        let mut sweep = Sweep::new();
        for entries in [32, 1, 16] {
            sweep.monitored(a.clone(), SimConfig::with_entries(entries));
        }
        let rows = sweep.run().unwrap();
        let sizes: Vec<usize> = rows.iter().map(|r| r.iht_entries).collect();
        assert_eq!(sizes, vec![32, 1, 16]);
    }

    #[test]
    fn is_clean_flags_detections() {
        let a = artifact();
        // A truncated FHT forces an unknown-block kill.
        let mut sweep = Sweep::new();
        sweep.monitored(a.clone(), SimConfig::default());
        let row = &sweep.run().unwrap()[0];
        assert!(row.is_clean());
        let mut dirty = row.clone();
        dirty.outcome = RunOutcome::MaxCycles;
        assert!(!dirty.is_clean());
        dirty.outcome = row.outcome;
        dirty.mismatches = 1;
        assert!(!dirty.is_clean());
    }
}
