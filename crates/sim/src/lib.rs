//! # cimon-sim — one-call simulation facade
//!
//! Ties the whole system together the way the paper's experimental
//! setup does: assemble (or take) a program image, generate its Full
//! Hash Table with the static analyser, configure the checker and the
//! OS, run, and report the metrics the evaluation section uses (miss
//! rate, cycle counts, overheads).
//!
//! ```
//! use cimon_sim::{run_baseline, run_monitored, SimConfig};
//!
//! let prog = cimon_asm::assemble("
//!     .text
//! main:
//!     li $t0, 9
//! loop:
//!     addiu $t0, $t0, -1
//!     bnez $t0, loop
//!     li $a0, 0
//!     li $v0, 10
//!     syscall
//! ").unwrap();
//!
//! let base = run_baseline(&prog.image);
//! let mon = run_monitored(&prog.image, &SimConfig::default(), None).unwrap();
//! assert_eq!(base.outcome, mon.outcome);
//! assert!(mon.stats.cycles >= base.stats.cycles);
//! ```
//!
//! For grids of runs (the paper's whole evaluation), use the parallel
//! experiment engine in [`engine`] instead of looping over these
//! one-call helpers.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::sync::Arc;
use std::time::Duration;

use cimon_core::CicConfig;
use cimon_hashgen::{static_fht, HashGenError};
use cimon_mem::ProgramImage;
use cimon_os::{ExceptionCost, FullHashTable, RefillPolicyKind};
use cimon_pipeline::{
    BlockCache, BlockExec, MonitorConfig, Predecode, PredecodedImage, Processor, ProcessorConfig,
    RunOutcome, RunStats,
};

pub mod chaos;
pub mod ckpt;
pub mod engine;
pub mod splice;

pub use cimon_core::{HashAlgoKind, SimError};
pub use cimon_pipeline::RunOutcome as Outcome;
pub use engine::{Artifact, Experiment, ResultRow, RowStatus, Sweep};
pub use splice::{
    run_baseline_spliced, run_monitored_spliced, run_monitored_spliced_stats, run_spliced,
    SpillMode, SpliceConfig, SpliceReport, SpliceRung, SpliceStats,
};

/// Experiment-level configuration (the knobs the paper sweeps).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// IHT entries (the paper sweeps 1, 8, 16, 32).
    pub iht_entries: usize,
    /// Hash algorithm in `HASHFU`.
    pub hash_algo: HashAlgoKind,
    /// Seed for the seeded-XOR variant.
    pub hash_seed: u32,
    /// OS refill policy.
    pub policy: RefillPolicyKind,
    /// OS exception handling cost in cycles (paper: 100).
    pub exception_cycles: u64,
    /// Safety cycle budget.
    pub max_cycles: u64,
    /// Wall-clock watchdog for the run (`None` disables it). Rows whose
    /// run is stopped by the watchdog come back with
    /// [`engine::RowStatus::TimedOut`] instead of hanging the sweep.
    pub max_wall: Option<Duration>,
}

impl Default for SimConfig {
    /// The paper's headline configuration (CIC8).
    fn default() -> Self {
        SimConfig {
            iht_entries: 8,
            hash_algo: HashAlgoKind::Xor,
            hash_seed: 0,
            policy: RefillPolicyKind::ReplaceHalfLru,
            exception_cycles: 100,
            max_cycles: 400_000_000,
            max_wall: None,
        }
    }
}

impl SimConfig {
    /// The paper's configuration at a given table size.
    pub fn with_entries(iht_entries: usize) -> SimConfig {
        SimConfig {
            iht_entries,
            ..SimConfig::default()
        }
    }
}

/// The result of one simulated run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Full statistics.
    pub stats: RunStats,
    /// FHT entries generated for the program (0 on baseline runs).
    pub fht_entries: usize,
    /// IHT miss rate in percent (0 on baseline runs) — Figure 6's
    /// metric.
    pub miss_rate_percent: f64,
}

/// Run a program on the baseline (unmonitored) processor with the
/// default safety cycle budget.
pub fn run_baseline(image: &ProgramImage) -> RunReport {
    run_baseline_with_max(image, ProcessorConfig::baseline().max_cycles)
}

/// Run a program on the baseline processor with an explicit safety
/// cycle budget (so sweeps give baseline and monitored rows the same
/// cap).
pub fn run_baseline_with_max(image: &ProgramImage, max_cycles: u64) -> RunReport {
    run_baseline_configured(image, max_cycles, None, Predecode::Auto, BlockExec::Auto)
}

/// [`run_baseline_with_max`] with a shared predecoded image and block
/// cache, so repeated runs (sweeps) skip the per-run decode and
/// block-grouping passes. `max_wall`, when set, arms the wall-clock
/// watchdog so baseline rows share the sweep's timeout semantics.
pub fn run_baseline_prepared(
    image: &ProgramImage,
    max_cycles: u64,
    max_wall: Option<Duration>,
    predecoded: Arc<PredecodedImage>,
    blocks: Arc<BlockCache>,
) -> RunReport {
    run_baseline_configured(
        image,
        max_cycles,
        max_wall,
        Predecode::Shared(predecoded),
        BlockExec::Shared(blocks),
    )
}

fn run_baseline_configured(
    image: &ProgramImage,
    max_cycles: u64,
    max_wall: Option<Duration>,
    predecode: Predecode,
    block_exec: BlockExec,
) -> RunReport {
    let mut cpu = Processor::new(
        image,
        ProcessorConfig {
            max_cycles,
            max_wall,
            predecode,
            block_exec,
            ..ProcessorConfig::baseline()
        },
    );
    let outcome = cpu.run();
    let stats = cpu.stats();
    RunReport {
        outcome,
        stats,
        fht_entries: 0,
        miss_rate_percent: 0.0,
    }
}

/// Build the FHT for an image under a config (static analysis).
///
/// # Errors
///
/// Propagates [`HashGenError`] for malformed text segments.
pub fn build_fht(image: &ProgramImage, config: &SimConfig) -> Result<FullHashTable, HashGenError> {
    let (fht, _) = static_fht(image, &[], config.hash_algo, config.hash_seed)?;
    Ok(fht)
}

/// Run a program on the monitored processor.
///
/// `fht` supplies a precomputed Full Hash Table; pass `None` to have
/// one generated here with the static analyser. Sweeps and repeated
/// runs should pass the shared table so the analysis happens once.
///
/// # Errors
///
/// Propagates [`HashGenError`] from FHT generation (only possible when
/// `fht` is `None`).
pub fn run_monitored(
    image: &ProgramImage,
    config: &SimConfig,
    fht: Option<Arc<FullHashTable>>,
) -> Result<RunReport, HashGenError> {
    let fht = match fht {
        Some(fht) => fht,
        None => Arc::new(build_fht(image, config)?),
    };
    Ok(run_monitored_with_fht(image, fht, config))
}

/// Run with a pre-built FHT (lets sweeps reuse the static analysis).
pub fn run_monitored_with_fht(
    image: &ProgramImage,
    fht: impl Into<Arc<FullHashTable>>,
    config: &SimConfig,
) -> RunReport {
    run_monitored_configured(image, fht.into(), config, Predecode::Auto, BlockExec::Auto)
}

/// [`run_monitored_with_fht`] with a shared predecoded image and block
/// cache, so repeated runs (sweeps) skip the per-run decode and
/// block-grouping passes.
pub fn run_monitored_prepared(
    image: &ProgramImage,
    fht: impl Into<Arc<FullHashTable>>,
    config: &SimConfig,
    predecoded: Arc<PredecodedImage>,
    blocks: Arc<BlockCache>,
) -> RunReport {
    run_monitored_configured(
        image,
        fht.into(),
        config,
        Predecode::Shared(predecoded),
        BlockExec::Shared(blocks),
    )
}

fn run_monitored_configured(
    image: &ProgramImage,
    fht: Arc<FullHashTable>,
    config: &SimConfig,
    predecode: Predecode,
    block_exec: BlockExec,
) -> RunReport {
    let fht_entries = fht.len();
    let cic = CicConfig {
        iht_entries: config.iht_entries,
        hash_algo: config.hash_algo,
        hash_seed: config.hash_seed,
    };
    let monitor = MonitorConfig {
        cic,
        fht,
        policy: config.policy,
        exception_cost: ExceptionCost {
            cycles: config.exception_cycles,
        },
    };
    let mut cpu = Processor::new(
        image,
        ProcessorConfig {
            monitor: Some(monitor),
            max_cycles: config.max_cycles,
            max_wall: config.max_wall,
            predecode,
            block_exec,
            ..ProcessorConfig::baseline()
        },
    );
    let outcome = cpu.run();
    let stats = cpu.stats();
    let miss_rate_percent = stats.cic.map(|c| c.miss_rate_percent()).unwrap_or(0.0);
    RunReport {
        outcome,
        stats,
        fht_entries,
        miss_rate_percent,
    }
}

/// Cycle overhead of a monitored run versus baseline, in percent —
/// Table 1's metric.
pub fn overhead_percent(baseline_cycles: u64, monitored_cycles: u64) -> f64 {
    if baseline_cycles == 0 {
        0.0
    } else {
        100.0 * (monitored_cycles as f64 - baseline_cycles as f64) / baseline_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimon_asm::assemble;

    fn program() -> cimon_asm::Program {
        assemble(
            "
            .text
        main:
            li   $t0, 25
            li   $t1, 0
        loop:
            addu $t1, $t1, $t0
            addiu $t0, $t0, -1
            bnez $t0, loop
            move $a0, $t1
            li   $v0, 10
            syscall
        ",
        )
        .unwrap()
    }

    #[test]
    fn baseline_and_monitored_agree() {
        let prog = program();
        let base = run_baseline(&prog.image);
        let mon = run_monitored(&prog.image, &SimConfig::default(), None).unwrap();
        assert_eq!(base.outcome, RunOutcome::Exited { code: 325 });
        assert_eq!(mon.outcome, base.outcome);
        assert_eq!(mon.stats.instructions, base.stats.instructions);
        assert!(mon.fht_entries >= 3);
        assert!(mon.stats.cycles >= base.stats.cycles);
    }

    #[test]
    fn overhead_definition() {
        assert_eq!(overhead_percent(100, 150), 50.0);
        assert_eq!(overhead_percent(0, 10), 0.0);
        assert_eq!(overhead_percent(200, 200), 0.0);
    }

    #[test]
    fn bigger_tables_do_not_miss_more() {
        let prog = program();
        let m1 = run_monitored(&prog.image, &SimConfig::with_entries(1), None).unwrap();
        let m8 = run_monitored(&prog.image, &SimConfig::with_entries(8), None).unwrap();
        assert!(m8.miss_rate_percent <= m1.miss_rate_percent);
    }

    #[test]
    fn policies_are_selectable() {
        let prog = program();
        for policy in RefillPolicyKind::all(7) {
            let cfg = SimConfig {
                policy,
                ..SimConfig::default()
            };
            let rep = run_monitored(&prog.image, &cfg, None).unwrap();
            assert_eq!(rep.outcome, RunOutcome::Exited { code: 325 });
        }
    }

    #[test]
    fn stronger_hash_algorithms_also_run_clean() {
        let prog = program();
        for algo in [
            HashAlgoKind::SeededXor,
            HashAlgoKind::Crc32,
            HashAlgoKind::Sha1,
        ] {
            let cfg = SimConfig {
                hash_algo: algo,
                hash_seed: 0xfeed,
                ..SimConfig::default()
            };
            let rep = run_monitored(&prog.image, &cfg, None).unwrap();
            assert_eq!(rep.outcome, RunOutcome::Exited { code: 325 }, "{algo}");
            let cic = rep.stats.cic.unwrap();
            assert_eq!(cic.mismatches, 0, "{algo}");
        }
    }
}
