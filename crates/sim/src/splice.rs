//! # Spliced parallel execution of a single long run
//!
//! One long simulation is inherently serial: every cycle depends on the
//! last. This module splits it anyway, in two passes:
//!
//! 1. **Fast pass** — [`Processor::run_fast_pass`] executes the whole
//!    program once with full functional + monitor fidelity but the
//!    cycle-accurate scheduler suppressed, emitting a
//!    [`ProcessorSnapshot`] checkpoint every
//!    [`SpliceConfig::interval_cycles`] retired instructions. Scheduler
//!    state at each checkpoint is reconstructed from a trailing event
//!    window ([`cimon_pipeline::Timing::replay`]) — exact up to a
//!    uniform shift.
//! 2. **Shard replay** — every inter-checkpoint span replays with full
//!    monitoring and timing, concurrently, on the same worker pool the
//!    experiment engine uses ([`crate::engine::parallel_map`]). Shifted
//!    schedules make
//!    the same decisions as absolute ones, so each shard's *advance*
//!    (its `last_id` delta) equals the serial run's advance over the
//!    same span; summing advances and taking the final shard's state
//!    stitches a result **byte-identical** to the serial run — outcome,
//!    cycles, registers, detection verdicts, and every counter.
//!
//! Two cases need care:
//!
//! * **Cycle budgets.** Shards replay unbounded; if the stitched total
//!   crosses `max_cycles` inside shard *k*, that shard is replayed once
//!   more with its schedule shifted to the absolute cycle position
//!   ([`Processor::shift_timing`]) and the real budget installed — an
//!   exact serial continuation, so `MaxCycles` lands on the exact
//!   instruction it would serially.
//! * **`ReadCycles`.** A program that reads the cycle counter feeds the
//!   schedule back into architectural state; the fast pass flags it and
//!   the splice falls back to one serial run
//!   ([`SpliceRung::SerialTimingDependent`]).
//!
//! In-flight bus-tap faults splice too: the fast pass runs the real tap
//! and records every override it produced (keyed by absolute fetch
//! count); shards install a positional replay tap seeded from the
//! checkpoint's fetch count, so a fault landing mid-shard replays on
//! exactly the fetch it originally hit.
//!
//! ## Disk-spilled checkpoints
//!
//! With [`SpliceConfig::spill`] set to [`SpillMode::Disk`] the fast
//! pass serialises every checkpoint to a CRC-framed scratch segment
//! ([`crate::ckpt`]) as it is emitted, keeping only a 16-byte
//! `(instret, fetch_count)` meta entry per checkpoint in RAM — the
//! splice's memory footprint stops scaling with program length. Shard
//! workers each open their own reader and deserialise their start
//! frame on demand.
//!
//! ## Degradation ladder
//!
//! The timing-dependent fallback generalises: any shard that cannot
//! replay — its checkpoint fails the snapshot integrity check
//! ([`cimon_core::SimError::SnapshotCorrupt`]), or its worker panics —
//! degrades the whole splice to one serial timed run, which depends on
//! no checkpoint at all. The result is still exact; only the
//! parallelism is lost, and [`SpliceStats::rung`] says which rung
//! actually ran so harnesses (and CI) can assert on the path taken.
//!
//! Disk spill adds two rungs. A spilled frame the segment scan
//! quarantines (bit rot, torn tail) costs no fallback at all: the
//! quarantined checkpoint simply stops being a shard boundary, and its
//! span is recomputed from the previous good checkpoint — still
//! parallel, still exact ([`SpliceRung::SplicedSpillRecompute`]). Only
//! a failure of the store *itself* (creating, writing, scanning, or
//! reading the segment) degrades to one serial run
//! ([`SpliceRung::SerialSpillIo`]), because then no spilled checkpoint
//! can be trusted.

use std::sync::{Arc, Mutex, PoisonError};

use cimon_core::{CicConfig, SimError};
use cimon_mem::{BusTap, ProgramImage};
use cimon_os::{ExceptionCost, FullHashTable};
use cimon_pipeline::{
    BlockCache, BlockExec, MonitorConfig, Predecode, PredecodedImage, Processor, ProcessorConfig,
    ProcessorSnapshot, RunOutcome, RunStats,
};

use crate::engine::{default_workers, parallel_map_isolated};
use crate::{build_fht, chaos, ckpt, RunReport, SimConfig};

/// Where the fast pass keeps its checkpoints.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpillMode {
    /// Checkpoints stay in RAM (a `Vec<ProcessorSnapshot>`); memory
    /// scales with program length.
    #[default]
    Ram,
    /// Checkpoints are serialised to a CRC-framed scratch segment on
    /// disk as they are emitted; RAM holds one 16-byte meta entry per
    /// checkpoint.
    Disk,
}

/// How to splice one long run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpliceConfig {
    /// Checkpoint interval, in retired instructions. The pipeline
    /// retires at most one instruction per cycle, so this also bounds
    /// each shard's length in serial cycles.
    pub interval_cycles: u64,
    /// Worker threads replaying shards.
    pub workers: usize,
    /// Where checkpoints live between the fast pass and shard replay.
    pub spill: SpillMode,
}

impl Default for SpliceConfig {
    fn default() -> Self {
        SpliceConfig {
            interval_cycles: 5_000_000,
            workers: default_workers(),
            spill: SpillMode::Ram,
        }
    }
}

/// Which rung of the splice degradation ladder produced the result.
/// Every rung is exact; the serial rungs just forgo parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpliceRung {
    /// The parallel shard replay ran to completion.
    Spliced,
    /// The parallel shard replay ran to completion, but one or more
    /// disk-spilled checkpoints were quarantined by the segment scan;
    /// their spans were recomputed from the previous good checkpoint.
    SplicedSpillRecompute,
    /// The fast pass saw a `ReadCycles` syscall; the run was redone
    /// serially because its architecture observes its own timing.
    SerialTimingDependent,
    /// A shard's checkpoint failed its integrity checksum on restore;
    /// the run was redone serially from the program image, which
    /// depends on no checkpoint.
    SerialSnapshotCorrupt,
    /// A shard worker panicked mid-replay; the run was redone serially.
    SerialWorkerPanic,
    /// The checkpoint spill store itself failed an I/O operation; no
    /// spilled checkpoint could be trusted, so the run was redone
    /// serially from the program image.
    SerialSpillIo,
}

impl SpliceRung {
    /// Short machine-readable tag for bench tables and CI assertions.
    pub fn name(&self) -> &'static str {
        match self {
            SpliceRung::Spliced => "spliced",
            SpliceRung::SplicedSpillRecompute => "spliced-spill-recompute",
            SpliceRung::SerialTimingDependent => "serial-timing",
            SpliceRung::SerialSnapshotCorrupt => "serial-snapshot",
            SpliceRung::SerialWorkerPanic => "serial-panic",
            SpliceRung::SerialSpillIo => "serial-spill-io",
        }
    }

    /// Whether this rung ran serially instead of sharded.
    pub fn is_serial(&self) -> bool {
        !matches!(
            self,
            SpliceRung::Spliced | SpliceRung::SplicedSpillRecompute
        )
    }
}

/// Counters describing how the splice actually executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpliceStats {
    /// The degradation-ladder rung that produced the result.
    pub rung: SpliceRung,
    /// Checkpoints the fast pass emitted (0 on the timing-dependent
    /// rung, where the pass is discarded).
    pub checkpoints: usize,
    /// Shards whose checkpoint failed its integrity checksum.
    pub corrupt_snapshots: u64,
    /// Shards whose worker panicked.
    pub shard_panics: u64,
    /// Checkpoint frames spilled to the disk segment (0 in RAM mode).
    pub spilled_frames: u64,
    /// Spilled frames the segment scan quarantined (bit flips, torn
    /// tails); each costs one recompute-from-previous span.
    pub quarantined_frames: u64,
    /// Store-level spill I/O failures (create, write, scan, or read).
    pub spill_io: u64,
}

impl SpliceStats {
    fn clean(rung: SpliceRung, checkpoints: usize) -> SpliceStats {
        SpliceStats {
            rung,
            checkpoints,
            corrupt_snapshots: 0,
            shard_panics: 0,
            spilled_frames: 0,
            quarantined_frames: 0,
            spill_io: 0,
        }
    }
}

/// The stitched result of a spliced run, byte-identical to what the
/// equivalent serial [`Processor::run`] would have produced.
#[derive(Clone, Debug)]
pub struct SpliceReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Full statistics, stitched across shards.
    pub stats: RunStats,
    /// Timed shard replays performed (including a budget fix-up
    /// replay, when one was needed). `1` means the splice degenerated
    /// to a single serial-length shard.
    pub shards: usize,
    /// Whether a serial rung ran (kept alongside
    /// [`SpliceReport::splice`] for existing callers; always equal to
    /// `splice.rung.is_serial()`).
    pub serial_fallback: bool,
    /// Which degradation-ladder rung ran, with failure counters.
    pub splice: SpliceStats,
}

/// Records, positionally, every override the wrapped tap produces
/// during the fast pass.
struct RecordingTap {
    inner: Box<dyn BusTap>,
    next_fetch: u64,
    log: Arc<Mutex<Vec<(u64, u32)>>>,
}

impl BusTap for RecordingTap {
    fn on_fetch(&mut self, addr: u32, word: u32) -> u32 {
        let at = self.next_fetch;
        self.next_fetch += 1;
        let out = self.inner.on_fetch(addr, word);
        if out != word {
            self.log
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push((at, out));
        }
        out
    }
}

/// Replays recorded overrides positionally. Memory contents are
/// identical in the replaying shard, so returning the recorded word on
/// the recorded fetch index (and the delivered word everywhere else)
/// reproduces the original tap exactly — including any internal state
/// the original carried, which is encoded in the override positions.
struct ReplayTap {
    next_fetch: u64,
    cursor: usize,
    overrides: Arc<Vec<(u64, u32)>>,
}

impl ReplayTap {
    fn starting_at(fetch_count: u64, overrides: Arc<Vec<(u64, u32)>>) -> ReplayTap {
        let cursor = overrides.partition_point(|&(at, _)| at < fetch_count);
        ReplayTap {
            next_fetch: fetch_count,
            cursor,
            overrides,
        }
    }
}

impl BusTap for ReplayTap {
    fn on_fetch(&mut self, _addr: u32, word: u32) -> u32 {
        let at = self.next_fetch;
        self.next_fetch += 1;
        if let Some(&(next, out)) = self.overrides.get(self.cursor) {
            if next == at {
                self.cursor += 1;
                return out;
            }
        }
        word
    }
}

/// One shard replay's contribution to the stitch.
struct ShardEnd {
    outcome: Option<RunOutcome>,
    /// `last_id` advance across the shard (equals the serial advance
    /// over the same span, by shift-invariance of the schedule).
    advance: u64,
    /// Final state, captured only by the shard that ends the run.
    stats: Option<RunStats>,
}

/// Splice one run over processors produced by `build`.
///
/// `build` must produce identically-configured processors (the splice
/// constructs one for the fast pass and one per shard); `tap`, when
/// given, is invoked once per pass that needs a live fault tap. The
/// processor's own `max_cycles` is overridden with the `max_cycles`
/// given here, so build closures need not thread it through.
pub fn run_spliced(
    build: &(dyn Fn() -> Processor + Sync),
    tap: Option<&(dyn Fn() -> Box<dyn BusTap> + Sync)>,
    max_cycles: u64,
    splice: &SpliceConfig,
) -> SpliceReport {
    // ---- Pass 1: the fast pass, checkpointing as it goes. ----
    let mut fast = build();
    fast.set_max_cycles(max_cycles);
    let log = Arc::new(Mutex::new(Vec::new()));
    if let Some(make_tap) = tap {
        fast.set_bus_tap(Box::new(RecordingTap {
            inner: make_tap(),
            next_fetch: 0,
            log: log.clone(),
        }));
    }
    let disk = splice.spill == SpillMode::Disk;
    let mut seg: Option<ckpt::ScratchSegment> = None;
    let mut writer: Option<ckpt::SegmentWriter> = None;
    let mut spill_err: Option<String> = None;
    if disk {
        let scratch = ckpt::ScratchSegment::new("splice");
        match ckpt::SegmentWriter::create(scratch.path()) {
            Ok(w) => writer = Some(w),
            Err(e) => spill_err = Some(format!("create segment: {e}")),
        }
        seg = Some(scratch);
    }
    // RAM mode keeps the snapshots themselves; disk mode spills each
    // one the moment it is emitted and keeps only its 16-byte meta, so
    // the working set never holds more than one snapshot.
    let mut snaps: Vec<ProcessorSnapshot> = Vec::new();
    let mut meta: Vec<(u64, u64)> = Vec::new();
    let report = fast.run_fast_pass(splice.interval_cycles, |s| {
        if disk {
            meta.push((s.instret(), s.fetch_count()));
            if spill_err.is_none() {
                if let Some(w) = writer.as_mut() {
                    if let Err(e) = w.append(&s.to_bytes()) {
                        spill_err = Some(format!("append frame: {e}"));
                    }
                }
            }
        } else {
            snaps.push(s);
        }
    });

    if report.timing_dependent {
        // The program consumed the cycle counter: only a serial timed
        // run produces trustworthy architectural state.
        return run_serial_rung(
            build,
            tap,
            max_cycles,
            SpliceStats::clean(SpliceRung::SerialTimingDependent, 0),
        );
    }

    let overrides = Arc::new(std::mem::take(
        &mut *log.lock().unwrap_or_else(PoisonError::into_inner),
    ));
    let has_tap = tap.is_some();
    // A fast-pass `MaxCycles` is the retired-instruction *proxy* for
    // the budget: the timed run certainly stops at or before this
    // instret, so bound the final shard here and let the budget fix-up
    // below find the exact stop.
    let proxy_stop = report.outcome == RunOutcome::MaxCycles;
    let fast_end = fast.instret();

    // ---- Disk spill: close and scan the segment. ----
    let mut index = ckpt::SegmentIndex::default();
    if disk && spill_err.is_none() {
        if let Some(w) = writer.take() {
            let path = seg
                .as_ref()
                .map(|s| s.path().to_path_buf())
                .unwrap_or_else(|| unreachable!("disk mode always reserves a segment path"));
            match w.finish().and_then(|_| ckpt::scan(&path)) {
                Ok(ix) => index = ix,
                Err(e) => spill_err = Some(format!("scan segment: {e}")),
            }
        }
    }
    let checkpoints = if disk { meta.len() } else { snaps.len() };
    let mut stats = SpliceStats::clean(SpliceRung::Spliced, checkpoints);
    if disk {
        stats.spilled_frames = meta.len() as u64;
        stats.quarantined_frames = (meta.len() - index.good.min(meta.len())) as u64;
    }
    if spill_err.is_some() {
        // The store itself failed: no spilled checkpoint can be
        // trusted, and a serial run depends on none.
        stats.spill_io = 1;
        stats.rung = SpliceRung::SerialSpillIo;
        return run_serial_rung(build, tap, max_cycles, stats);
    }

    // ---- Shard plan: every checkpoint in RAM mode; only the frames
    // the scan proved good in spill mode. A quarantined frame stops
    // being a shard boundary — its span is recomputed from the
    // previous good checkpoint, so damaged spill storage costs
    // parallelism, never correctness. ----
    let good: Vec<usize> = if disk {
        index
            .frames
            .iter()
            .filter(|f| f.is_good())
            .map(|f| f.seq as usize)
            .collect()
    } else {
        (0..snaps.len()).collect()
    };
    if disk && good.len() < meta.len() {
        stats.rung = SpliceRung::SplicedSpillRecompute;
    }
    let seg_path = seg.as_ref().map(|s| s.path().to_path_buf());
    // Deserialise one spilled checkpoint, re-verifying its frame CRC.
    let load_spilled = |ck: usize| -> Result<ProcessorSnapshot, SimError> {
        let path = seg_path
            .as_deref()
            .unwrap_or_else(|| unreachable!("disk mode always reserves a segment path"));
        let spill = |e: std::io::Error| SimError::CheckpointSpill {
            message: format!("read frame {ck}: {e}"),
        };
        let mut reader = ckpt::SegmentReader::open(path).map_err(spill)?;
        let bytes = reader.read_frame(&index.frames[ck]).map_err(spill)?.ok_or(
            SimError::SnapshotCorrupt {
                expected: 0,
                found: 0,
            },
        )?;
        ProcessorSnapshot::from_bytes(&bytes).map_err(|_| SimError::SnapshotCorrupt {
            expected: 0,
            found: 0,
        })
    };

    // ---- Pass 2: replay every shard with full timing, in parallel. ----
    let indices: Vec<usize> = (0..=good.len()).collect();
    let chaos_on = chaos::enabled();
    let shard_results =
        parallel_map_isolated(&indices, splice.workers.max(1), "splice", |_, &i| {
            chaos::maybe_delay("splice", i);
            let mut cpu = build();
            let mut start_fetch = 0;
            if i > 0 {
                let ck = good[i - 1];
                if disk {
                    // Write-side chaos (frame flips, torn tails) was
                    // already screened out by the scan; what loads here
                    // is re-verified against its frame CRC.
                    let snap = load_spilled(ck)?;
                    cpu.restore(&snap)?;
                    start_fetch = snap.fetch_count();
                } else if chaos_on {
                    // Chaos: corrupt a *clone* of the checkpoint, so the
                    // shared snapshot other passes read stays clean and the
                    // restore below is what detects the damage.
                    let mut snap = snaps[ck].clone();
                    chaos::maybe_corrupt_snapshot("splice", i, &mut snap);
                    cpu.restore(&snap)?;
                    start_fetch = snap.fetch_count();
                } else {
                    cpu.restore(&snaps[ck])?;
                    start_fetch = snaps[ck].fetch_count();
                }
            }
            cpu.set_max_cycles(u64::MAX);
            if has_tap {
                cpu.set_bus_tap(Box::new(ReplayTap::starting_at(
                    start_fetch,
                    overrides.clone(),
                )));
            }
            let target = match good.get(i) {
                Some(&ck) => {
                    if disk {
                        meta[ck].0
                    } else {
                        snaps[ck].instret()
                    }
                }
                None if proxy_stop => fast_end,
                None => u64::MAX,
            };
            let start_id = cpu.timing().last_id();
            let outcome = cpu.run_to_instret(target);
            Ok(ShardEnd {
                outcome,
                advance: cpu.timing().last_id() - start_id,
                stats: outcome.is_some().then(|| cpu.stats()),
            })
        });

    // ---- Degradation ladder: any shard that could not replay (corrupt
    // checkpoint, panicking worker, failing spill store) voids the
    // parallel pass; rerun serially from the image, which depends on
    // none of them. ----
    let mut shard_ends = Vec::with_capacity(shard_results.len());
    let mut first_failure = None;
    for result in shard_results {
        match result.and_then(|r| r) {
            Ok(end) => shard_ends.push(end),
            Err(err) => {
                match err {
                    SimError::SnapshotCorrupt { .. } => stats.corrupt_snapshots += 1,
                    SimError::CheckpointSpill { .. } => stats.spill_io += 1,
                    _ => stats.shard_panics += 1,
                }
                first_failure.get_or_insert(err);
            }
        }
    }
    if let Some(err) = first_failure {
        stats.rung = match err {
            SimError::SnapshotCorrupt { .. } => SpliceRung::SerialSnapshotCorrupt,
            SimError::CheckpointSpill { .. } => SpliceRung::SerialSpillIo,
            _ => SpliceRung::SerialWorkerPanic,
        };
        return run_serial_rung(build, tap, max_cycles, stats);
    }

    // ---- Watchdog: a shard stopped by the wall-clock deadline has no
    // architectural result to stitch; surface the timeout as the run's
    // outcome (the final shard's stats, when it got that far, are
    // best-effort). ----
    if shard_ends
        .iter()
        .any(|s| s.outcome == Some(RunOutcome::Watchdog))
    {
        let stats_end = shard_ends
            .iter()
            .find_map(|s| {
                (s.outcome == Some(RunOutcome::Watchdog))
                    .then(|| s.stats.clone())
                    .flatten()
            })
            .unwrap_or_default();
        return SpliceReport {
            outcome: RunOutcome::Watchdog,
            stats: stats_end,
            shards: shard_ends.len(),
            serial_fallback: false,
            splice: stats,
        };
    }

    // ---- Stitch: accumulate absolute cycle positions, find a budget
    // crossing if any. ----
    let mut total = 0u64;
    let mut crossing = None;
    for (i, shard) in shard_ends.iter().enumerate() {
        let start_abs = total;
        total += shard.advance;
        if crossing.is_none() && total + 4 > max_cycles {
            crossing = Some((i, start_abs));
        }
    }

    if let Some((k, start_abs)) = crossing {
        // Budget fix-up: replay the crossing shard with its schedule
        // shifted to the absolute position and the real budget — an
        // exact serial continuation, so its end state IS the run's end
        // state. Everything replayed past it is discarded.
        let mut cpu = build();
        let mut fix_fetch = 0;
        if k > 0 {
            // The checkpoint restored cleanly during pass 2; a failure
            // here means it was corrupted since — degrade to serial.
            let ck = good[k - 1];
            let restored = if disk {
                load_spilled(ck).and_then(|snap| {
                    cpu.restore(&snap)?;
                    Ok(snap.fetch_count())
                })
            } else {
                cpu.restore(&snaps[ck]).map(|()| snaps[ck].fetch_count())
            };
            match restored {
                Ok(fetch) => fix_fetch = fetch,
                Err(err) => {
                    stats.rung = match err {
                        SimError::CheckpointSpill { .. } => {
                            stats.spill_io += 1;
                            SpliceRung::SerialSpillIo
                        }
                        _ => {
                            stats.corrupt_snapshots += 1;
                            SpliceRung::SerialSnapshotCorrupt
                        }
                    };
                    return run_serial_rung(build, tap, max_cycles, stats);
                }
            }
        }
        let rel = cpu.timing().last_id();
        cpu.shift_timing(start_abs.checked_sub(rel).unwrap_or_else(|| {
            unreachable!("window replay never advances past the serial schedule")
        }));
        cpu.set_max_cycles(max_cycles);
        if has_tap {
            cpu.set_bus_tap(Box::new(ReplayTap::starting_at(
                fix_fetch,
                overrides.clone(),
            )));
        }
        let outcome = cpu.run();
        return SpliceReport {
            outcome,
            stats: cpu.stats(),
            shards: shard_ends.len() + 1,
            serial_fallback: false,
            splice: stats,
        };
    }

    debug_assert!(
        shard_ends[..shard_ends.len() - 1]
            .iter()
            .all(|s| s.outcome.is_none()),
        "only the final shard may end the run"
    );
    let last = shard_ends
        .last()
        .unwrap_or_else(|| unreachable!("at least one shard always runs"));
    let outcome = last.outcome.unwrap_or_else(|| {
        unreachable!("the final shard finishes the run when no budget crossing exists")
    });
    let mut run_stats = last
        .stats
        .clone()
        .unwrap_or_else(|| unreachable!("the finishing shard captured its stats"));
    // Per-shard counters (instructions, stalls, monitor stats) are
    // absolute already — only the cycle total is relative per shard.
    run_stats.cycles = if run_stats.instructions == 0 {
        0
    } else {
        total + 4
    };
    SpliceReport {
        outcome,
        stats: run_stats,
        shards: shard_ends.len(),
        serial_fallback: false,
        splice: stats,
    }
}

/// One serial timed run — the bottom of the degradation ladder. Exact
/// by construction (it is the very run the splice reproduces), and
/// dependent on no checkpoint.
fn run_serial_rung(
    build: &(dyn Fn() -> Processor + Sync),
    tap: Option<&(dyn Fn() -> Box<dyn BusTap> + Sync)>,
    max_cycles: u64,
    stats: SpliceStats,
) -> SpliceReport {
    let mut cpu = build();
    cpu.set_max_cycles(max_cycles);
    if let Some(make_tap) = tap {
        cpu.set_bus_tap(make_tap());
    }
    let outcome = cpu.run();
    SpliceReport {
        outcome,
        stats: cpu.stats(),
        shards: 1,
        serial_fallback: true,
        splice: stats,
    }
}

/// [`run_monitored`](crate::run_monitored), spliced: identical result,
/// computed as one fast pass plus parallel shard replays.
///
/// # Errors
///
/// Returns [`SimError`] from FHT generation (only possible when `fht`
/// is `None`).
pub fn run_monitored_spliced(
    image: &ProgramImage,
    config: &SimConfig,
    fht: Option<Arc<FullHashTable>>,
    splice: &SpliceConfig,
) -> Result<RunReport, SimError> {
    run_monitored_spliced_stats(image, config, fht, splice).map(|(report, _)| report)
}

/// [`run_monitored_spliced`], additionally returning the
/// [`SpliceStats`] — which degradation-ladder rung produced the result
/// and its failure counters — for callers (benches, CI gates) that
/// must know whether the parallel path actually ran.
///
/// # Errors
///
/// Returns [`SimError`] from FHT generation (only possible when `fht`
/// is `None`).
pub fn run_monitored_spliced_stats(
    image: &ProgramImage,
    config: &SimConfig,
    fht: Option<Arc<FullHashTable>>,
    splice: &SpliceConfig,
) -> Result<(RunReport, SpliceStats), SimError> {
    let fht = match fht {
        Some(fht) => fht,
        None => Arc::new(build_fht(image, config)?),
    };
    let fht_entries = fht.len();
    let predecoded = Arc::new(PredecodedImage::new(image));
    let blocks = Arc::new(BlockCache::new(predecoded.clone()));
    let cic = CicConfig {
        iht_entries: config.iht_entries,
        hash_algo: config.hash_algo,
        hash_seed: config.hash_seed,
    };
    let build = {
        let config = *config;
        move || {
            Processor::new(
                image,
                ProcessorConfig {
                    monitor: Some(MonitorConfig {
                        cic,
                        fht: fht.clone(),
                        policy: config.policy,
                        exception_cost: ExceptionCost {
                            cycles: config.exception_cycles,
                        },
                    }),
                    max_cycles: config.max_cycles,
                    max_wall: config.max_wall,
                    predecode: Predecode::Shared(predecoded.clone()),
                    block_exec: BlockExec::Shared(blocks.clone()),
                    ..ProcessorConfig::baseline()
                },
            )
        }
    };
    let spliced = run_spliced(&build, None, config.max_cycles, splice);
    let miss_rate_percent = spliced
        .stats
        .cic
        .map(|c| c.miss_rate_percent())
        .unwrap_or(0.0);
    Ok((
        RunReport {
            outcome: spliced.outcome,
            stats: spliced.stats,
            fht_entries,
            miss_rate_percent,
        },
        spliced.splice,
    ))
}

/// [`run_baseline_with_max`](crate::run_baseline_with_max), spliced.
pub fn run_baseline_spliced(
    image: &ProgramImage,
    max_cycles: u64,
    splice: &SpliceConfig,
) -> RunReport {
    let predecoded = Arc::new(PredecodedImage::new(image));
    let blocks = Arc::new(BlockCache::new(predecoded.clone()));
    let build = move || {
        Processor::new(
            image,
            ProcessorConfig {
                max_cycles,
                predecode: Predecode::Shared(predecoded.clone()),
                block_exec: BlockExec::Shared(blocks.clone()),
                ..ProcessorConfig::baseline()
            },
        )
    };
    let spliced = run_spliced(&build, None, max_cycles, splice);
    RunReport {
        outcome: spliced.outcome,
        stats: spliced.stats,
        fht_entries: 0,
        miss_rate_percent: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_baseline_with_max, run_monitored, RunOutcome};
    use cimon_asm::assemble;

    fn program() -> cimon_asm::Program {
        assemble(
            "
            .text
        main:
            li   $t0, 500
            li   $t1, 0
        loop:
            addu $t1, $t1, $t0
            addiu $t0, $t0, -1
            bnez $t0, loop
            li   $a0, 0
            li   $v0, 10
            syscall
        ",
        )
        .unwrap()
    }

    fn tight(interval: u64, workers: usize) -> SpliceConfig {
        SpliceConfig {
            interval_cycles: interval,
            workers,
            spill: SpillMode::Ram,
        }
    }

    fn tight_disk(interval: u64, workers: usize) -> SpliceConfig {
        SpliceConfig {
            spill: SpillMode::Disk,
            ..tight(interval, workers)
        }
    }

    #[test]
    fn spliced_monitored_run_is_byte_identical_to_serial() {
        let prog = program();
        let config = SimConfig::default();
        let serial = run_monitored(&prog.image, &config, None).unwrap();
        let spliced = run_monitored_spliced(&prog.image, &config, None, &tight(100, 4)).unwrap();
        assert_eq!(spliced.outcome, serial.outcome);
        assert_eq!(spliced.stats, serial.stats);
        assert_eq!(spliced.fht_entries, serial.fht_entries);
        assert_eq!(spliced.miss_rate_percent, serial.miss_rate_percent);
    }

    #[test]
    fn spliced_baseline_run_is_byte_identical_to_serial() {
        let prog = program();
        let serial = run_baseline_with_max(&prog.image, 1_000_000);
        let spliced = run_baseline_spliced(&prog.image, 1_000_000, &tight(64, 3));
        assert_eq!(spliced.outcome, serial.outcome);
        assert_eq!(spliced.stats, serial.stats);
    }

    #[test]
    fn disk_spilled_splice_is_byte_identical_to_serial() {
        let prog = program();
        let config = SimConfig::default();
        let serial = run_monitored(&prog.image, &config, None).unwrap();
        let (spliced, stats) =
            run_monitored_spliced_stats(&prog.image, &config, None, &tight_disk(100, 4)).unwrap();
        assert_eq!(spliced.outcome, serial.outcome);
        assert_eq!(spliced.stats, serial.stats);
        assert_eq!(spliced.miss_rate_percent, serial.miss_rate_percent);
        assert!(stats.spilled_frames > 0, "{stats:?}");
        if !chaos::enabled() {
            // With chaos off every frame survives the scan and the
            // shard plan is the same as RAM mode's.
            assert_eq!(stats.rung, SpliceRung::Spliced);
            assert_eq!(stats.quarantined_frames, 0);
            assert_eq!(stats.spill_io, 0);
        } else {
            // Write-side chaos may quarantine frames; the recompute
            // rung is still parallel and still exact (asserted above).
            assert!(!stats.rung.is_serial() || stats.rung == SpliceRung::SerialSpillIo);
        }
    }

    #[test]
    fn disk_spilled_budget_interrupt_matches_serial() {
        let prog = program();
        let config = SimConfig {
            max_cycles: 700,
            ..SimConfig::default()
        };
        let serial = run_monitored(&prog.image, &config, None).unwrap();
        assert_eq!(serial.outcome, RunOutcome::MaxCycles);
        let spliced =
            run_monitored_spliced(&prog.image, &config, None, &tight_disk(50, 4)).unwrap();
        assert_eq!(spliced.outcome, serial.outcome);
        assert_eq!(spliced.stats, serial.stats);
    }

    #[test]
    fn disk_spilled_tap_faults_still_replay_in_shard() {
        let prog = program();
        let config = SimConfig::default();
        let fht = Arc::new(build_fht(&prog.image, &config).unwrap());
        let victim = prog.image.entry + 8;
        struct OneShot {
            target: u32,
            remaining_visits: u32,
            done: bool,
        }
        impl BusTap for OneShot {
            fn on_fetch(&mut self, addr: u32, word: u32) -> u32 {
                if addr == self.target && !self.done {
                    if self.remaining_visits > 0 {
                        self.remaining_visits -= 1;
                        return word;
                    }
                    self.done = true;
                    return word ^ (1 << 18);
                }
                word
            }
        }
        let make_tap = move || -> Box<dyn BusTap> {
            Box::new(OneShot {
                target: victim,
                remaining_visits: 150,
                done: false,
            })
        };
        let build = || {
            Processor::new(
                &prog.image,
                ProcessorConfig {
                    monitor: Some(MonitorConfig {
                        cic: CicConfig {
                            iht_entries: config.iht_entries,
                            hash_algo: config.hash_algo,
                            hash_seed: config.hash_seed,
                        },
                        fht: fht.clone(),
                        policy: config.policy,
                        exception_cost: ExceptionCost {
                            cycles: config.exception_cycles,
                        },
                    }),
                    max_cycles: config.max_cycles,
                    ..ProcessorConfig::baseline()
                },
            )
        };
        let mut serial = build();
        serial.set_bus_tap(make_tap());
        let serial_outcome = serial.run();
        assert!(matches!(serial_outcome, RunOutcome::Detected { .. }));

        let spliced = run_spliced(
            &build,
            Some(&make_tap),
            config.max_cycles,
            &tight_disk(100, 4),
        );
        assert_eq!(spliced.outcome, serial_outcome);
        assert_eq!(spliced.stats, serial.stats());
        if !chaos::enabled() {
            assert!(!spliced.serial_fallback);
            assert!(spliced.shards > 1);
        }
    }

    #[test]
    fn budget_interrupt_lands_on_the_exact_serial_cycle() {
        let prog = program();
        // Cut the run off mid-loop.
        let config = SimConfig {
            max_cycles: 700,
            ..SimConfig::default()
        };
        let serial = run_monitored(&prog.image, &config, None).unwrap();
        assert_eq!(serial.outcome, RunOutcome::MaxCycles);
        let spliced = run_monitored_spliced(&prog.image, &config, None, &tight(50, 4)).unwrap();
        assert_eq!(spliced.outcome, serial.outcome);
        assert_eq!(spliced.stats, serial.stats);
    }

    #[test]
    fn tap_faults_replay_inside_their_shard() {
        struct OneShot {
            target: u32,
            remaining_visits: u32,
            done: bool,
        }
        impl BusTap for OneShot {
            fn on_fetch(&mut self, addr: u32, word: u32) -> u32 {
                if addr == self.target && !self.done {
                    if self.remaining_visits > 0 {
                        self.remaining_visits -= 1;
                        return word;
                    }
                    self.done = true;
                    return word ^ (1 << 18);
                }
                word
            }
        }
        let prog = program();
        let config = SimConfig::default();
        let fht = Arc::new(build_fht(&prog.image, &config).unwrap());
        // Fault the loop's addu only on its 150th visit, so the flip
        // lands deep inside a middle shard.
        let victim = prog.image.entry + 8;
        let make_tap = move || -> Box<dyn BusTap> {
            Box::new(OneShot {
                target: victim,
                remaining_visits: 150,
                done: false,
            })
        };

        let run_serial = || {
            Processor::new(
                &prog.image,
                ProcessorConfig {
                    monitor: Some(MonitorConfig {
                        cic: CicConfig {
                            iht_entries: config.iht_entries,
                            hash_algo: config.hash_algo,
                            hash_seed: config.hash_seed,
                        },
                        fht: fht.clone(),
                        policy: config.policy,
                        exception_cost: ExceptionCost {
                            cycles: config.exception_cycles,
                        },
                    }),
                    max_cycles: config.max_cycles,
                    ..ProcessorConfig::baseline()
                },
            )
        };
        let mut serial = run_serial();
        serial.set_bus_tap(make_tap());
        let serial_outcome = serial.run();
        assert!(matches!(serial_outcome, RunOutcome::Detected { .. }));

        let spliced = run_spliced(
            &run_serial,
            Some(&make_tap),
            config.max_cycles,
            &tight(100, 4),
        );
        assert!(!spliced.serial_fallback);
        assert!(spliced.shards > 1);
        assert_eq!(spliced.outcome, serial_outcome);
        assert_eq!(spliced.stats, serial.stats());
    }

    #[test]
    fn read_cycles_forces_serial_fallback() {
        let prog = assemble(
            "
            .text
        main:
            li $v0, 30
            syscall
            move $a0, $v0
            li $v0, 10
            syscall
        ",
        )
        .unwrap();
        let image = &prog.image;
        let predecoded = Arc::new(PredecodedImage::new(image));
        let blocks = Arc::new(BlockCache::new(predecoded.clone()));
        let build = move || {
            Processor::new(
                image,
                ProcessorConfig {
                    predecode: Predecode::Shared(predecoded.clone()),
                    block_exec: BlockExec::Shared(blocks.clone()),
                    ..ProcessorConfig::baseline()
                },
            )
        };
        let spliced = run_spliced(&build, None, 1_000_000, &SpliceConfig::default());
        assert!(spliced.serial_fallback);
        assert_eq!(spliced.shards, 1);
        // The serial fallback still produces the true timed result.
        let serial = run_baseline_with_max(&prog.image, 1_000_000);
        assert_eq!(spliced.outcome, serial.outcome);
        assert_eq!(spliced.stats, serial.stats);
    }
}
