//! Self-chaos integration suite (`CIMON_CHAOS=1 cargo test -p
//! cimon-sim --test chaos_sweep`).
//!
//! With chaos enabled, the engine layers inject their own faults —
//! worker panics in the sweep pool, shard delays and snapshot bit-flips
//! in the splice replay — and these tests prove the degradation story
//! end to end: every injected failure stays localized to its own row or
//! rung, and every row or report *not* hit by an injection is
//! byte-identical to a clean run. Without `CIMON_CHAOS` the same tests
//! assert the all-clean behaviour, so the suite is green in both CI
//! modes.

use cimon_asm::assemble;
use cimon_core::{CicConfig, SimError};
use cimon_hashgen::static_fht;
use cimon_pipeline::{Processor, ProcessorConfig, RunOutcome};
use cimon_sim::engine::{Artifact, RowStatus, Sweep};
use cimon_sim::{chaos, run_spliced, HashAlgoKind, SimConfig, SpillMode, SpliceConfig, SpliceRung};

const PROGRAM: &str = "
    .text
main:
    li   $t0, 60
    li   $t1, 0
loop:
    addu $t1, $t1, $t0
    addiu $t0, $t0, -1
    bnez $t0, loop
    move $a0, $t1
    li   $v0, 10
    syscall
";

fn sweep() -> Sweep {
    let prog = assemble(PROGRAM).expect("program assembles");
    let artifact = Artifact::new("chaos-loop", prog.image.into(), Some(1830));
    let mut sweep = Sweep::new();
    sweep.baseline(artifact.clone());
    sweep.grid(
        &[artifact],
        &[1, 8, 16],
        &[HashAlgoKind::Xor, HashAlgoKind::Crc32],
        SimConfig::default(),
    );
    sweep
}

#[test]
fn sweep_completes_with_failures_localized_to_their_rows() {
    let sweep = sweep();
    let rows = sweep.run().expect("sweep runs");
    assert_eq!(rows.len(), sweep.len());

    let mut injected = 0;
    for (i, (row, experiment)) in rows.iter().zip(sweep.experiments()).enumerate() {
        if chaos::panics_at("sweep", i) {
            injected += 1;
            match &row.status {
                RowStatus::Failed(SimError::WorkerPanic { site, message }) => {
                    assert_eq!(*site, "sweep");
                    assert!(message.contains("chaos"), "unexpected payload: {message}");
                }
                other => panic!("row {i} should be poisoned by chaos, got {other:?}"),
            }
            assert!(!row.is_clean());
            assert_eq!(row.cycles, 0, "poisoned rows carry no fabricated numbers");
        } else {
            // Rows chaos does not touch are byte-identical to a direct,
            // injection-free run of the same experiment.
            let clean = experiment.run().expect("clean oracle run");
            assert_eq!(row.status, RowStatus::Ok);
            assert_eq!(row, &clean, "row {i} diverged from its clean oracle");
            assert_eq!(row.outcome, RunOutcome::Exited { code: 1830 });
        }
    }

    if chaos::enabled() {
        assert_eq!(
            injected,
            rows.iter().filter(|r| r.status != RowStatus::Ok).count(),
            "every poisoned row must trace back to an injection"
        );
    } else {
        assert_eq!(injected, 0);
        assert!(rows.iter().all(|r| r.status == RowStatus::Ok));
    }
}

#[test]
fn serial_and_parallel_chaos_sweeps_agree() {
    // Chaos decisions key off (site, index), not thread identity, so a
    // serial run poisons exactly the same rows as an 8-worker run —
    // including the poisoned rows' typed errors.
    let sweep = sweep();
    let serial = sweep.run_serial().expect("serial sweep");
    let parallel = sweep.run_with_workers(8).expect("parallel sweep");
    assert_eq!(serial, parallel);
}

#[test]
fn same_seed_makes_identical_injection_decisions_across_runs() {
    // The chaos contract: decisions are a pure function of
    // (CIMON_CHAOS_SEED, site, index). Two full runs of the same sweep
    // in one process therefore poison exactly the same rows with
    // exactly the same typed errors — and the decision predicates
    // themselves never waver between calls.
    let sweep = sweep();
    let first = sweep.run().expect("first chaos run");
    let second = sweep.run().expect("second chaos run");
    assert_eq!(first, second, "same seed must replay the same run");

    let first_poisoned: Vec<usize> = (0..first.len())
        .filter(|&i| first[i].status != RowStatus::Ok)
        .collect();
    for pass in 0..2 {
        let decided: Vec<usize> = (0..first.len())
            .filter(|&i| chaos::panics_at("sweep", i))
            .collect();
        assert_eq!(
            decided, first_poisoned,
            "pass {pass}: decisions must match the observed poison set"
        );
        for i in 0..32 {
            assert_eq!(
                chaos::corrupts_request_at(i),
                chaos::corrupts_request_at(i),
                "request decision {i} wavered"
            );
            assert_eq!(
                chaos::flips_journal_bit_at(i),
                chaos::flips_journal_bit_at(i),
                "journal decision {i} wavered"
            );
        }
    }

    // With the default seed, the injection grid is the golden one the
    // unit suite pins — asserting it here too catches an env-resolution
    // bug (e.g. the seed not reaching the OnceLock'd config).
    let default_seed = std::env::var("CIMON_CHAOS_SEED")
        .map(|s| s.parse::<u64>().map(|v| v == 0xC1A05).unwrap_or(false))
        .unwrap_or(true);
    if chaos::enabled() && default_seed {
        let golden_sweep: Vec<usize> = [5, 7, 16, 17, 20, 23]
            .into_iter()
            .filter(|&i| i < first.len())
            .collect();
        assert_eq!(first_poisoned, golden_sweep);
        let requests: Vec<usize> = (0..24).filter(|&i| chaos::corrupts_request_at(i)).collect();
        assert_eq!(requests, vec![2, 3, 8, 14, 20, 22]);
        let journal: Vec<usize> = (0..24)
            .filter(|&i| chaos::flips_journal_bit_at(i))
            .collect();
        assert_eq!(journal, vec![0, 1, 5, 8, 10, 12, 20, 23]);
    }
    if !chaos::enabled() {
        assert!(first_poisoned.is_empty());
    }
}

#[test]
fn serve_layer_injections_are_localized_and_reversible() {
    // Request corruption replaces the first byte with a control
    // character (guaranteed parse failure); journal flips toggle one
    // seeded bit. Both report exactly when they fired, so a recovery
    // differential can account for every damaged record.
    let reference = b"{\"id\":7,\"workload\":\"loop\"}".to_vec();
    for i in 0..24 {
        let mut line = reference.clone();
        let hit = chaos::maybe_corrupt_request(i, &mut line);
        assert_eq!(hit, chaos::corrupts_request_at(i));
        if hit {
            assert_eq!(line[0], 0x01, "corruption must be unparseable");
            assert_eq!(line[1..], reference[1..], "damage stays in byte 0");
        } else {
            assert_eq!(line, reference);
        }

        let mut payload = reference.clone();
        let flipped = chaos::maybe_flip_journal_bit(i, &mut payload);
        assert_eq!(flipped, chaos::flips_journal_bit_at(i));
        let diff: Vec<usize> = (0..payload.len())
            .filter(|&b| payload[b] != reference[b])
            .collect();
        if flipped {
            assert_eq!(diff.len(), 1, "exactly one byte differs");
            let xor = payload[diff[0]] ^ reference[diff[0]];
            assert_eq!(xor.count_ones(), 1, "exactly one bit differs");
        } else {
            assert!(diff.is_empty());
        }
    }
}

#[test]
fn splice_degrades_but_never_diverges_under_chaos() {
    let prog = assemble(PROGRAM).expect("program assembles");
    let (fht, _) = static_fht(&prog.image, &[], HashAlgoKind::Xor, 0).expect("static analysis");
    let config = ProcessorConfig::monitored(CicConfig::with_entries(8), fht);
    let max_cycles = 1_000_000;

    let mut serial = Processor::new(&prog.image, config.clone());
    serial.set_max_cycles(max_cycles);
    let serial_outcome = serial.run();
    let serial_stats = serial.stats();

    // A small interval forces many shards, so chaos gets many chances
    // to delay a shard, corrupt its snapshot, or — in disk mode —
    // flip and tear the spilled segment frames.
    for spill in [SpillMode::Ram, SpillMode::Disk] {
        let splice = SpliceConfig {
            interval_cycles: 40,
            workers: 4,
            spill,
        };
        let report = run_spliced(
            &|| Processor::new(&prog.image, config.clone()),
            None,
            max_cycles,
            &splice,
        );

        // Whatever rung ran, the result is the serial result.
        assert_eq!(report.outcome, serial_outcome, "{spill:?}");
        assert_eq!(report.stats, serial_stats, "{spill:?}");
        assert_eq!(report.serial_fallback, report.splice.rung.is_serial());
        match report.splice.rung {
            SpliceRung::Spliced => {
                assert_eq!(report.splice.corrupt_snapshots, 0);
                assert_eq!(report.splice.shard_panics, 0);
            }
            SpliceRung::SplicedSpillRecompute => {
                // Quarantined segment frames degraded those spans to
                // recompute-from-previous, but the run stayed parallel.
                assert!(chaos::enabled(), "quarantine only comes from chaos here");
                assert_eq!(spill, SpillMode::Disk);
                assert!(report.splice.quarantined_frames > 0);
            }
            SpliceRung::SerialSnapshotCorrupt => {
                assert!(
                    chaos::enabled(),
                    "corrupt snapshots only come from chaos here"
                );
                assert!(report.splice.corrupt_snapshots > 0);
            }
            SpliceRung::SerialWorkerPanic => {
                assert!(report.splice.shard_panics > 0);
            }
            SpliceRung::SerialSpillIo => {
                assert_eq!(spill, SpillMode::Disk);
                assert!(report.splice.spill_io > 0);
            }
            SpliceRung::SerialTimingDependent => {
                panic!("this program reads no cycle counters");
            }
        }
        if !chaos::enabled() {
            assert_eq!(report.splice.rung, SpliceRung::Spliced);
        }
    }
}
