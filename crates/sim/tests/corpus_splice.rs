//! Spliced execution over the synthetic large-program corpus.
//!
//! Corpus programs are the splice tier's proving ground: loopy CFGs,
//! indirect calls, and benign self-modifying text stores, at dynamic
//! lengths the MiBench-like registry never reaches. Monitored corpus
//! runs must finish clean (the self-modifying stores rewrite identical
//! bytes), and the spliced result must be byte-identical to serial.

use cimon_sim::{
    run_baseline_spliced, run_baseline_with_max, run_monitored, run_monitored_spliced, Outcome,
    SimConfig, SpillMode, SpliceConfig,
};
use cimon_workloads::corpus;

#[test]
fn monitored_corpus_runs_finish_clean_and_splice_exactly() {
    for seed in [11u64, 42] {
        let prog = corpus::small(seed).assemble();
        let config = SimConfig::default();
        let serial = run_monitored(&prog.image, &config, None).unwrap();
        assert!(
            matches!(serial.outcome, Outcome::Exited { .. }),
            "corpus seed {seed} must run clean under the monitor: {:?}",
            serial.outcome
        );
        // Both checkpoint stores — in-RAM and disk-spilled — must
        // stitch the same bytes the serial run produces.
        for spill in [SpillMode::Ram, SpillMode::Disk] {
            let splice = SpliceConfig {
                interval_cycles: 4_000,
                workers: 4,
                spill,
            };
            let spliced = run_monitored_spliced(&prog.image, &config, None, &splice).unwrap();
            assert_eq!(spliced.outcome, serial.outcome, "seed {seed} {spill:?}");
            assert_eq!(spliced.stats, serial.stats, "seed {seed} {spill:?}");
            assert_eq!(spliced.miss_rate_percent, serial.miss_rate_percent);
        }
        // A small corpus program still spans many checkpoints at this
        // interval — the splice must have actually sharded.
        assert!(serial.stats.instructions > 40_000);
    }
}

#[test]
fn baseline_corpus_runs_splice_exactly() {
    let prog = corpus::small(7).assemble();
    let serial = run_baseline_with_max(&prog.image, 400_000_000);
    for spill in [SpillMode::Ram, SpillMode::Disk] {
        let splice = SpliceConfig {
            interval_cycles: 8_000,
            workers: 3,
            spill,
        };
        let spliced = run_baseline_spliced(&prog.image, 400_000_000, &splice);
        assert_eq!(spliced.outcome, serial.outcome, "{spill:?}");
        assert_eq!(spliced.stats, serial.stats, "{spill:?}");
    }
}
