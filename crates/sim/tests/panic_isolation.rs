//! Differential property tests for worker panic isolation.
//!
//! The contract pinned here is the tentpole of the fault-tolerant
//! engine: a panic at any set of grid points poisons exactly those
//! slots with a typed [`SimError::WorkerPanic`] while every other slot
//! is byte-identical to a serial, injection-free map — across worker
//! counts, item counts, and panic placements.

use std::collections::BTreeSet;

use proptest::prelude::*;

use cimon_sim::engine::parallel_map_isolated;
use cimon_sim::SimError;

proptest! {
    #[test]
    fn panics_poison_only_their_own_slots(
        n in 1usize..48,
        workers in 1usize..6,
        panic_at in prop::collection::vec(0usize..48, 0..10),
    ) {
        let panic_at: BTreeSet<usize> = panic_at.into_iter().collect();
        let items: Vec<u64> = (0..n as u64).collect();
        let rows = parallel_map_isolated(&items, workers, "prop", |i, &x| {
            if panic_at.contains(&i) {
                panic!("injected panic at {i}");
            }
            x.wrapping_mul(31).wrapping_add(7)
        });
        prop_assert_eq!(rows.len(), n);
        for (i, row) in rows.iter().enumerate() {
            if panic_at.contains(&i) {
                match row {
                    Err(SimError::WorkerPanic { site, message }) => {
                        prop_assert_eq!(*site, "prop");
                        prop_assert!(message.contains("injected panic"),
                                     "payload lost: {}", message);
                    }
                    other => panic!("slot {i} should be poisoned, got {other:?}"),
                }
            } else {
                prop_assert_eq!(
                    row.as_ref().expect("untouched slot"),
                    &(items[i].wrapping_mul(31).wrapping_add(7))
                );
            }
        }
    }

    #[test]
    fn worker_count_never_changes_the_rows(
        n in 1usize..32,
        panic_at in prop::collection::vec(0usize..32, 0..6),
    ) {
        let panic_at: BTreeSet<usize> = panic_at.into_iter().collect();
        let items: Vec<u64> = (0..n as u64).collect();
        let run = |workers: usize| {
            parallel_map_isolated(&items, workers, "prop", |i, &x| {
                if panic_at.contains(&i) {
                    panic!("injected panic at {i}");
                }
                x * 3
            })
        };
        let serial = run(1);
        for workers in [2, 4, 7] {
            prop_assert_eq!(&serial, &run(workers));
        }
    }
}
