//! Differential property tests for spliced execution.
//!
//! A spliced run — fast pass, checkpoints, parallel shard replay,
//! stitch — must be **byte-identical** to the serial run it splits:
//! same outcome, same cycle count, same statistics, same detection
//! verdicts. This holds across random loopy programs, splice intervals,
//! worker counts, stored-image tampering, in-flight bus-fault taps, and
//! cycle-budget interrupts landing inside arbitrary shards.

use proptest::prelude::*;

use cimon_asm::assemble;
use cimon_core::hash::hash_words;
use cimon_core::{BlockRecord, CicConfig, HashAlgoKind};
use cimon_mem::{BusTap, ProgramImage};
use cimon_os::FullHashTable;
use cimon_pipeline::{Processor, ProcessorConfig, RunOutcome, RunStats};
use cimon_sim::{run_spliced, SpillMode, SpliceConfig};

/// A one-shot transient fault: flip `bit` of the word fetched from
/// `target`, once.
struct OneShot {
    target: u32,
    bit: u8,
    done: bool,
}

impl BusTap for OneShot {
    fn on_fetch(&mut self, addr: u32, word: u32) -> u32 {
        if addr == self.target && !self.done {
            self.done = true;
            word ^ (1u32 << self.bit)
        } else {
            word
        }
    }
}

/// A generated random program: counted backward loops, ALU/memory
/// traffic, and a clean exit (same shape as the pipeline's
/// `chain_mask_diff.rs`).
#[derive(Clone, Debug)]
struct RandomProgram {
    source: String,
}

prop_compose! {
    fn arb_program()(
        loops in 1usize..5,
        body in 1usize..7,
        trips_scale in 2u32..40,
        seed in any::<u64>(),
    ) -> RandomProgram {
        use std::fmt::Write as _;
        let mut src = String::from("    .data\nbuf: .word ");
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as u32
        };
        for i in 0..16 {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(src, "{sep}{}", next());
        }
        src.push_str("\n    .text\nmain:\n");
        let regs = ["$t0", "$t1", "$t2", "$t3", "$t4", "$t5"];
        for r in regs {
            let _ = writeln!(src, "    li {r}, {}", next() as i32 % 500);
        }
        for l in 0..loops {
            let trips = 2 + next() % (9 * trips_scale);
            let _ = writeln!(src, "    li $s0, {trips}");
            let _ = writeln!(src, "L{l}:");
            for _ in 0..body {
                let a = regs[(next() % 6) as usize];
                let b = regs[(next() % 6) as usize];
                let c = regs[(next() % 6) as usize];
                match next() % 8 {
                    0 => { let _ = writeln!(src, "    addu {a}, {b}, {c}"); }
                    1 => { let _ = writeln!(src, "    subu {a}, {b}, {c}"); }
                    2 => { let _ = writeln!(src, "    xor {a}, {b}, {c}"); }
                    3 => { let _ = writeln!(src, "    addiu {a}, {b}, {}", next() as i32 % 100); }
                    4 => { let _ = writeln!(src, "    lw {a}, {}($gp)", (next() % 16) * 4); }
                    5 => { let _ = writeln!(src, "    sw {a}, {}($gp)", (next() % 16) * 4); }
                    6 => { let _ = writeln!(src, "    mult {a}, {b}"); }
                    _ => { let _ = writeln!(src, "    mflo {a}"); }
                }
            }
            let _ = writeln!(src, "    addiu $s0, $s0, -1");
            let _ = writeln!(src, "    bnez $s0, L{l}");
        }
        src.push_str("    move $a0, $t0\n    li $v0, 10\n    syscall\n");
        RandomProgram { source: src }
    }
}

/// The exact FHT for a program from its recorded block trace.
fn trace_fht(image: &ProgramImage) -> FullHashTable {
    let mut cpu = Processor::new(
        image,
        ProcessorConfig {
            record_blocks: true,
            ..ProcessorConfig::baseline()
        },
    );
    cpu.run();
    let mem = image.to_memory();
    cpu.blocks()
        .iter()
        .map(|b| {
            let words = b.key.addresses().map(|a| mem.read_u32(a).unwrap());
            BlockRecord {
                key: b.key,
                hash: hash_words(HashAlgoKind::Xor, 0, words),
            }
        })
        .collect()
}

/// Serial oracle: one processor, one `run()`.
fn serial(
    image: &ProgramImage,
    config: &ProcessorConfig,
    max_cycles: u64,
    tap: Option<Box<dyn BusTap>>,
) -> (RunOutcome, RunStats) {
    let mut cpu = Processor::new(image, config.clone());
    cpu.set_max_cycles(max_cycles);
    if let Some(tap) = tap {
        cpu.set_bus_tap(tap);
    }
    (cpu.run(), cpu.stats())
}

/// Assert spliced ≡ serial for one scenario, across both the baseline
/// and the monitored processor.
fn assert_splice_equivalent(
    image: &ProgramImage,
    fht: &FullHashTable,
    max_cycles: u64,
    splice: &SpliceConfig,
    tap: Option<&(dyn Fn() -> Box<dyn BusTap> + Sync)>,
) {
    let configs = [
        ProcessorConfig::baseline(),
        ProcessorConfig::monitored(CicConfig::with_entries(8), fht.clone()),
    ];
    for config in &configs {
        let (serial_out, serial_stats) = serial(image, config, max_cycles, tap.map(|make| make()));
        let spliced = run_spliced(
            &|| Processor::new(image, config.clone()),
            tap,
            max_cycles,
            splice,
        );
        assert!(!spliced.serial_fallback, "no ReadCycles in these programs");
        assert_eq!(spliced.outcome, serial_out, "outcome diverged");
        assert_eq!(spliced.stats, serial_stats, "stats diverged");
    }
}

proptest! {
    #[test]
    fn clean_spliced_runs_match_serial(
        p in arb_program(),
        interval in 16u64..600,
        workers in 1usize..5,
    ) {
        let prog = assemble(&p.source).expect("generated program assembles");
        let fht = trace_fht(&prog.image);
        let splice = SpliceConfig { interval_cycles: interval, workers, spill: SpillMode::Ram };
        assert_splice_equivalent(&prog.image, &fht, 1_000_000, &splice, None);
    }

    #[test]
    fn tampered_spliced_runs_match_serial(
        p in arb_program(),
        interval in 16u64..600,
        word_idx in any::<prop::sample::Index>(),
        bit in 0u8..32,
    ) {
        let prog = assemble(&p.source).expect("generated program assembles");
        let n_words = prog.image.text.bytes.len() / 4;
        let victim = prog.image.text.base + 4 * word_idx.index(n_words) as u32;
        let mut image = prog.image.clone();
        // Tamper the stored image itself: every shard sees the same
        // (tampered) memory via its snapshot.
        let off = (victim - image.text.base) as usize;
        image.text.bytes[off] ^= 1 << (bit % 8);
        let fht = trace_fht(&prog.image);
        let splice = SpliceConfig { interval_cycles: interval, workers: 3, spill: SpillMode::Ram };
        assert_splice_equivalent(&image, &fht, 60_000, &splice, None);
    }

    #[test]
    fn bus_tap_faults_splice_identically(
        p in arb_program(),
        interval in 16u64..600,
        word_idx in any::<prop::sample::Index>(),
        bit in 0u8..32,
    ) {
        let prog = assemble(&p.source).expect("generated program assembles");
        let n_words = prog.image.text.bytes.len() / 4;
        let target = prog.image.text.base + 4 * word_idx.index(n_words) as u32;
        let fht = trace_fht(&prog.image);
        let splice = SpliceConfig { interval_cycles: interval, workers: 3, spill: SpillMode::Ram };
        let make_tap = move || -> Box<dyn BusTap> {
            Box::new(OneShot { target, bit, done: false })
        };
        assert_splice_equivalent(&prog.image, &fht, 60_000, &splice, Some(&make_tap));
    }

    #[test]
    fn budget_interrupts_splice_identically(
        p in arb_program(),
        interval in 16u64..300,
        max_cycles in 1u64..2_000,
    ) {
        let prog = assemble(&p.source).expect("generated program assembles");
        let fht = trace_fht(&prog.image);
        // Budget interrupts are the trickiest stitch path; run them
        // through the disk-spilled checkpoint store so frame reload
        // and fix-up get property-level coverage too.
        let splice = SpliceConfig { interval_cycles: interval, workers: 3, spill: SpillMode::Disk };
        assert_splice_equivalent(&prog.image, &fht, max_cycles, &splice, None);
    }
}
