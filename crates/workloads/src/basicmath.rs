//! `basicmath` — integer square/cube roots, GCD, angle conversion
//! (MiBench automotive).
//!
//! MiBench's basicmath exercises scalar math routines (cubic roots,
//! square roots, angle conversion) over arrays of inputs. The kernel
//! here runs three integer phases per element — Newton integer square
//! root, binary-search cube root, and fixed-point degree→radian
//! conversion — mirroring the original's phase-structured control flow:
//! several distinct hot regions touched in rotation.

use crate::{lcg_sequence, word_table, Workload};

/// Number of input elements.
pub const N: u32 = 220;
/// LCG seed.
pub const SEED: u32 = 0x0bad_f00d;
/// Fixed-point scale for the degree→radian phase (2^16 · π/180 ≈ 1144).
pub const DEG2RAD_Q16: u32 = 1144;

/// Input vector.
pub fn inputs() -> Vec<u32> {
    // Bound inputs below 2^30 so signed comparisons in the assembly are
    // safe and Newton's method converges quickly.
    lcg_sequence(SEED, N as usize)
        .into_iter()
        .map(|x| x & 0x3fff_ffff)
        .collect()
}

/// Integer square root (largest r with r² ≤ x) via Newton iteration.
pub fn isqrt(x: u32) -> u32 {
    if x < 2 {
        return x;
    }
    let mut r = x / 2;
    loop {
        let next = (r + x / r) / 2;
        if next >= r {
            return r;
        }
        r = next;
    }
}

/// Integer cube root via binary search over 0..=1290.
pub fn icbrt(x: u32) -> u32 {
    let (mut lo, mut hi) = (0u32, 1291u32);
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if mid.saturating_mul(mid).saturating_mul(mid) <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Euclid GCD.
pub fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Rust reference: accumulate all four phases over the inputs.
pub fn reference() -> u32 {
    let v = inputs();
    let mut acc: u32 = 0;
    for &x in v.iter() {
        acc = acc.wrapping_add(isqrt(x));
        acc = acc.wrapping_add(icbrt(x));
        // deg2rad in Q16 over the low 9 bits as "degrees".
        let deg = x & 0x1ff;
        acc = acc.wrapping_add(deg.wrapping_mul(DEG2RAD_Q16) >> 8);
    }
    acc
}

/// Build the workload.
pub fn build() -> Workload {
    let data = word_table("inputs", &inputs());
    let source = format!(
        r#"
# basicmath: isqrt + icbrt + deg2rad over {N} inputs.
    .data
{data}

    .text
main:
    li   $s7, 0                # acc
    li   $s6, 0                # index i
phase_loop:
    la   $t0, inputs
    sll  $t1, $s6, 2
    addu $t0, $t0, $t1
    lw   $s0, 0($t0)           # x

    # ---- phase 1: isqrt (Newton) ----
    move $a0, $s0
    jal  isqrt
    addu $s7, $s7, $v0

    # ---- phase 2: icbrt (binary search) ----
    move $a0, $s0
    jal  icbrt
    addu $s7, $s7, $v0

    # ---- phase 3: deg2rad Q16 ----
    andi $t0, $s0, 0x1ff
    li   $t1, {DEG2RAD_Q16}
    mul  $t0, $t0, $t1
    srl  $t0, $t0, 8
    addu $s7, $s7, $t0

    addiu $s6, $s6, 1
    li   $t4, {N}
    blt  $s6, $t4, phase_loop

    move $a0, $s7
    li   $v0, 10
    syscall

# ---- v0 = isqrt(a0): Newton iteration ----
isqrt:
    li   $t0, 2
    bltu $a0, $t0, isqrt_small
    srl  $v0, $a0, 1           # r = x/2
isqrt_loop:
    divu $t0, $a0, $v0         # x / r
    addu $t0, $t0, $v0
    srl  $t0, $t0, 1           # next
    bgeu $t0, $v0, isqrt_done
    move $v0, $t0
    b    isqrt_loop
isqrt_small:
    move $v0, $a0
isqrt_done:
    jr   $ra

# ---- v0 = icbrt(a0): binary search over [0, 1291) ----
icbrt:
    li   $t0, 0                # lo
    li   $t1, 1291             # hi
icbrt_loop:
    addiu $t2, $t0, 1
    bgeu $t2, $t1, icbrt_done
    addu $t2, $t0, $t1
    srl  $t2, $t2, 1           # mid
    mul  $t3, $t2, $t2
    mul  $t3, $t3, $t2         # mid^3 (fits: 1290^3 < 2^31)
    bgtu $t3, $a0, icbrt_high
    move $t0, $t2
    b    icbrt_loop
icbrt_high:
    move $t1, $t2
    b    icbrt_loop
icbrt_done:
    move $v0, $t0
    jr   $ra
"#
    );
    Workload {
        name: "basicmath",
        source,
        expected_exit: reference(),
        description: "integer sqrt/cbrt/deg2rad phases over an input vector",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimon_pipeline::{Processor, ProcessorConfig, RunOutcome};

    #[test]
    fn helper_functions_are_correct() {
        for x in [0u32, 1, 2, 3, 4, 15, 16, 17, 99, 1 << 20, (1 << 30) - 1] {
            let r = isqrt(x);
            assert!(r * r <= x, "isqrt({x}) = {r}");
            assert!((r + 1).saturating_mul(r + 1) > x);
            let c = icbrt(x);
            assert!(c * c * c <= x);
            assert!((c + 1).saturating_mul(c + 1).saturating_mul(c + 1) > x);
        }
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(0, 5), 5);
    }

    #[test]
    fn icbrt_mid_cube_fits_i32() {
        // The assembly computes mid^3 with signed mult; verify bound.
        assert!(1290u64.pow(3) < (1u64 << 31));
    }

    #[test]
    fn runs_to_expected_exit() {
        let w = build();
        let prog = w.assemble();
        let mut cpu = Processor::new(&prog.image, ProcessorConfig::baseline());
        assert_eq!(
            cpu.run(),
            RunOutcome::Exited {
                code: w.expected_exit
            }
        );
    }
}
