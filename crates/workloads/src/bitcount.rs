//! `bitcount` — count set bits with three methods (MiBench automotive).
//!
//! A tight loop over LCG-generated words, counting bits per word with
//! Kernighan clearing, a shift-and-add loop, and a 16-entry nibble
//! table. The dynamic block working set is tiny and extremely hot, which
//! is why the paper's Table 1 shows 0% monitoring overhead for bitcount
//! already at 8 IHT entries.

use crate::{lcg_next, Workload};

/// Number of words processed.
pub const WORDS: u32 = 768;
/// LCG seed.
pub const SEED: u32 = 0x1234_5678;

/// Rust reference implementation.
pub fn reference() -> u32 {
    let mut x = SEED;
    let (mut s1, mut s2, mut s3) = (0u32, 0u32, 0u32);
    for _ in 0..WORDS {
        x = lcg_next(x);
        s1 = s1.wrapping_add(x.count_ones());
        s2 = s2.wrapping_add(x.count_ones());
        s3 = s3.wrapping_add(x.count_ones());
    }
    s1.wrapping_add(s2).wrapping_add(s3)
}

/// Build the workload.
pub fn build() -> Workload {
    let source = format!(
        r#"
# bitcount: three bit-counting kernels over {WORDS} LCG words,
# phase-structured like MiBench (one pass over the array per method).
    .data
ntab:
    .byte 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4
words:
    .space {NBYTES}

    .text
main:
    # ---- phase 0: materialise the LCG word array ----
    li   $s1, {SEED}
    la   $t2, words
    li   $s0, {WORDS}
gen:
    li   $t0, 1664525
    mul  $s1, $s1, $t0
    li   $t0, 1013904223
    addu $s1, $s1, $t0
    sw   $s1, 0($t2)
    addiu $t2, $t2, 4
    addiu $s0, $s0, -1
    bnez $s0, gen

    # ---- phase 1: Kernighan clearing ----
    li   $s2, 0
    la   $s6, words
    li   $s0, {WORDS}
kphase:
    lw   $a0, 0($s6)
kloop:
    beqz $a0, kdone
    addiu $t0, $a0, -1
    and  $a0, $a0, $t0
    addiu $s2, $s2, 1
    b    kloop
kdone:
    addiu $s6, $s6, 4
    addiu $s0, $s0, -1
    bnez $s0, kphase

    # ---- phase 2: 32 shift-and-mask steps ----
    li   $s3, 0
    la   $s6, words
    li   $s0, {WORDS}
sphase:
    lw   $a0, 0($s6)
    li   $t1, 32
sloop:
    andi $t0, $a0, 1
    addu $s3, $s3, $t0
    srl  $a0, $a0, 1
    addiu $t1, $t1, -1
    bnez $t1, sloop
    addiu $s6, $s6, 4
    addiu $s0, $s0, -1
    bnez $s0, sphase

    # ---- phase 3: nibble table ----
    li   $s4, 0
    la   $s5, ntab
    la   $s6, words
    li   $s0, {WORDS}
nphase:
    lw   $a0, 0($s6)
    li   $t1, 8
nloop:
    andi $t0, $a0, 0xf
    addu $t2, $s5, $t0
    lbu  $t3, 0($t2)
    addu $s4, $s4, $t3
    srl  $a0, $a0, 4
    addiu $t1, $t1, -1
    bnez $t1, nloop
    addiu $s6, $s6, 4
    addiu $s0, $s0, -1
    bnez $s0, nphase

    addu $a0, $s2, $s3
    addu $a0, $a0, $s4
    li   $v0, 10
    syscall
"#,
        NBYTES = WORDS * 4
    );
    Workload {
        name: "bitcount",
        source,
        expected_exit: reference(),
        description: "three bit-counting kernels over LCG words (tight hot loops)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimon_pipeline::{Processor, ProcessorConfig, RunOutcome};

    #[test]
    fn reference_is_stable() {
        // Triple-counted bits of the fixed LCG stream: pin the value so
        // accidental generator changes are caught.
        assert_eq!(reference() % 3, 0);
    }

    #[test]
    fn runs_to_expected_exit() {
        let w = build();
        let prog = w.assemble();
        let mut cpu = Processor::new(&prog.image, ProcessorConfig::baseline());
        assert_eq!(
            cpu.run(),
            RunOutcome::Exited {
                code: w.expected_exit
            }
        );
    }
}
