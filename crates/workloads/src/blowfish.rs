//! `blowfish` — 16-round Feistel cipher (MiBench security).
//!
//! Real Blowfish round structure: `l ^= P[i]; r ^= F(l); swap`, with
//! `F(x) = ((S0[x₃₁..₂₄] + S1[x₂₃..₁₆]) ^ S2[x₁₅..₈]) + S3[x₇..₀]`.
//! The P-array and S-boxes are LCG-filled rather than derived from the
//! π-digit key schedule (the schedule is 521 extra encryptions that add
//! nothing to the block-behaviour the experiments measure; the table
//! values do not change the executed path). Blocks alternate between
//! the **encrypt** and **decrypt** code paths, as MiBench's CBC driver
//! does — the two paths double the hot working set, which is why the
//! paper sees blowfish overhead stay high (16.9% → 14.7%) even with a
//! 16-entry IHT.

use crate::{lcg_sequence, word_table, Workload};

/// Blocks processed (each 64 bits).
pub const BLOCKS: u32 = 96;
/// Seed for the P-array and S-boxes.
pub const SEED_TABLES: u32 = 0xb10f_1234;
/// Seed for the data blocks.
pub const SEED_DATA: u32 = 0xdada_5678;

/// P-array (18 words).
pub fn p_array() -> Vec<u32> {
    lcg_sequence(SEED_TABLES, 18)
}

/// The four S-boxes, 256 words each, concatenated.
pub fn s_boxes() -> Vec<u32> {
    lcg_sequence(SEED_TABLES.wrapping_add(1), 4 * 256)
}

/// Input (l, r) pairs.
pub fn data_blocks() -> Vec<u32> {
    lcg_sequence(SEED_DATA, 2 * BLOCKS as usize)
}

fn f(s: &[u32], x: u32) -> u32 {
    let a = (x >> 24) as usize;
    let b = ((x >> 16) & 0xff) as usize;
    let c = ((x >> 8) & 0xff) as usize;
    let d = (x & 0xff) as usize;
    (s[a].wrapping_add(s[256 + b]) ^ s[512 + c]).wrapping_add(s[768 + d])
}

/// Encrypt one block.
pub fn encrypt(p: &[u32], s: &[u32], mut l: u32, mut r: u32) -> (u32, u32) {
    for round_key in p.iter().take(16) {
        l ^= round_key;
        r ^= f(s, l);
        std::mem::swap(&mut l, &mut r);
    }
    std::mem::swap(&mut l, &mut r);
    r ^= p[16];
    l ^= p[17];
    (l, r)
}

/// Decrypt one block (P-array walked backwards).
pub fn decrypt(p: &[u32], s: &[u32], mut l: u32, mut r: u32) -> (u32, u32) {
    for i in (2..18).rev() {
        l ^= p[i];
        r ^= f(s, l);
        std::mem::swap(&mut l, &mut r);
    }
    std::mem::swap(&mut l, &mut r);
    r ^= p[1];
    l ^= p[0];
    (l, r)
}

/// Rust reference: alternate encrypt/decrypt over the block stream and
/// fold the outputs.
pub fn reference() -> u32 {
    let p = p_array();
    let s = s_boxes();
    let data = data_blocks();
    let mut acc: u32 = 0;
    for (i, pair) in data.chunks_exact(2).enumerate() {
        let (l, r) = if i % 2 == 0 {
            encrypt(&p, &s, pair[0], pair[1])
        } else {
            decrypt(&p, &s, pair[0], pair[1])
        };
        acc = acc.wrapping_add(l ^ r.rotate_left(1));
    }
    acc
}

/// Round-trip property used in tests: decrypt(encrypt(x)) == x.
pub fn roundtrip_ok() -> bool {
    let p = p_array();
    let s = s_boxes();
    let (l, r) = encrypt(&p, &s, 0x0123_4567, 0x89ab_cdef);
    decrypt(&p, &s, l, r) == (0x0123_4567, 0x89ab_cdef)
}

/// Build the workload.
pub fn build() -> Workload {
    let p = word_table("parr", &p_array());
    let s = word_table("sbox", &s_boxes());
    let data = word_table("blocks", &data_blocks());
    // 4x unrolled Feistel round bodies (MiBench's blowfish unrolls its
    // rounds with BF_ENC macros; the unroll is what pushes the hot
    // working set past a 16-entry IHT).
    let mut enc_body = String::new();
    let mut dec_body = String::new();
    for r in 0..4 {
        use std::fmt::Write as _;
        let _ = write!(
            enc_body,
            "    la   $t0, parr\n    sll  $t1, $s3, 2\n    addu $t0, $t0, $t1\n    \
             lw   $t2, {off}($t0)\n    xor  $s0, $s0, $t2\n    move $a0, $s0\n    \
             jal  bf_f\n    xor  $s1, $s1, $v0\n    move $t3, $s0\n    \
             move $s0, $s1\n    move $s1, $t3\n",
            off = 4 * r
        );
        let _ = write!(
            dec_body,
            "    la   $t0, parr\n    sll  $t1, $s3, 2\n    addu $t0, $t0, $t1\n    \
             lw   $t2, {off}($t0)\n    xor  $s0, $s0, $t2\n    move $a0, $s0\n    \
             jal  bf_f\n    xor  $s1, $s1, $v0\n    move $t3, $s0\n    \
             move $s0, $s1\n    move $s1, $t3\n",
            off = -4 * r
        );
    }
    let source = format!(
        r#"
# blowfish: 16-round Feistel over {BLOCKS} blocks, alternating
# encrypt/decrypt paths.
    .data
{p}
{s}
{data}

    .text
main:
    li   $s7, 0                # acc
    li   $s6, 0                # block index
blk_loop:
    la   $t0, blocks
    sll  $t1, $s6, 3           # 8 bytes per block
    addu $t0, $t0, $t1
    lw   $a0, 0($t0)           # l
    lw   $a1, 4($t0)           # r
    andi $t2, $s6, 1
    bnez $t2, do_dec
    jal  bf_encrypt
    b    blk_fold
do_dec:
    jal  bf_decrypt
blk_fold:
    # acc += l ^ rotl1(r)   (v0 = l, v1 = r)
    sll  $t0, $v1, 1
    srl  $t1, $v1, 31
    or   $t0, $t0, $t1
    xor  $t0, $v0, $t0
    addu $s7, $s7, $t0
    addiu $s6, $s6, 1
    li   $t4, {BLOCKS}
    blt  $s6, $t4, blk_loop

    move $a0, $s7
    li   $v0, 10
    syscall

# ---- v0 = F(a0): the Blowfish round function ----
bf_f:
    la   $t9, sbox
    srl  $t0, $a0, 24
    sll  $t0, $t0, 2
    addu $t0, $t9, $t0
    lw   $t0, 0($t0)           # S0[a]
    srl  $t1, $a0, 16
    andi $t1, $t1, 0xff
    sll  $t1, $t1, 2
    addu $t1, $t9, $t1
    lw   $t1, 1024($t1)        # S1[b]
    addu $t0, $t0, $t1
    srl  $t2, $a0, 8
    andi $t2, $t2, 0xff
    sll  $t2, $t2, 2
    addu $t2, $t9, $t2
    lw   $t2, 2048($t2)        # S2[c]
    xor  $t0, $t0, $t2
    andi $t3, $a0, 0xff
    sll  $t3, $t3, 2
    addu $t3, $t9, $t3
    lw   $t3, 3072($t3)        # S3[d]
    addu $v0, $t0, $t3
    jr   $ra

# ---- (v0, v1) = encrypt(a0 = l, a1 = r), rounds unrolled 4x ----
bf_encrypt:
    move $s0, $a0              # l
    move $s1, $a1              # r
    move $s2, $ra
    li   $s3, 0                # i
enc_round:
{enc_body}
    addiu $s3, $s3, 4
    li   $t4, 16
    blt  $s3, $t4, enc_round
    # undo last swap, whiten
    move $t3, $s0
    move $s0, $s1
    move $s1, $t3
    la   $t0, parr
    lw   $t2, 64($t0)          # P[16]
    xor  $s1, $s1, $t2
    lw   $t2, 68($t0)          # P[17]
    xor  $s0, $s0, $t2
    move $v0, $s0
    move $v1, $s1
    jr   $s2

# ---- (v0, v1) = decrypt(a0 = l, a1 = r), rounds unrolled 4x ----
bf_decrypt:
    move $s0, $a0
    move $s1, $a1
    move $s2, $ra
    li   $s3, 17               # i runs 17 down to 2, 4 per iteration
dec_round:
{dec_body}
    addiu $s3, $s3, -4
    li   $t4, 1
    bgt  $s3, $t4, dec_round
    move $t3, $s0
    move $s0, $s1
    move $s1, $t3
    la   $t0, parr
    lw   $t2, 4($t0)           # P[1]
    xor  $s1, $s1, $t2
    lw   $t2, 0($t0)           # P[0]
    xor  $s0, $s0, $t2
    move $v0, $s0
    move $v1, $s1
    jr   $s2
"#
    );
    Workload {
        name: "blowfish",
        source,
        expected_exit: reference(),
        description: "16-round Feistel cipher alternating encrypt/decrypt code paths",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimon_pipeline::{Processor, ProcessorConfig, RunOutcome};

    #[test]
    fn feistel_roundtrips() {
        assert!(roundtrip_ok());
    }

    #[test]
    fn runs_to_expected_exit() {
        let w = build();
        let prog = w.assemble();
        let mut cpu = Processor::new(&prog.image, ProcessorConfig::baseline());
        assert_eq!(
            cpu.run(),
            RunOutcome::Exited {
                code: w.expected_exit
            }
        );
    }
}
