//! # Synthetic large-program corpus
//!
//! The MiBench-like registry finishes in milliseconds — far too small
//! to exercise long-run machinery (splice checkpoints, chain caches,
//! campaign checkpoint-restart) at realistic scale. This module
//! promotes the differential-test program generator into a first-class,
//! seeded corpus: loopy control-flow graphs with nested counted loops,
//! direct calls (`jal`/`jr`), **indirect calls** through
//! register-computed targets (`la`+`jalr`), and **self-modifying
//! stores** that write instruction words back to the text segment
//! (byte-identical rewrites, so monitored runs stay clean while every
//! text-write invalidation path fires). Dynamic length is configurable
//! up to millions of instructions via
//! [`CorpusSpec::target_dynamic_instructions`].
//!
//! Programs never read the cycle counter (syscall 30), so they are
//! always spliceable; their exit codes are data-dependent and are
//! *not* pre-computed — harnesses use a serial run as the oracle.

use std::fmt::Write as _;

/// What to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Generator seed: same seed, same program.
    pub seed: u64,
    /// Approximate dynamic instruction count to aim for. The generator
    /// sizes the outer loop's trip count from the (exactly known)
    /// per-iteration cost, so the real count lands within one outer
    /// iteration of this.
    pub target_dynamic_instructions: u64,
}

/// A generated corpus program.
#[derive(Clone, Debug)]
pub struct CorpusProgram {
    /// `corpus-<seed>-<target>`.
    pub name: String,
    /// The spec it was generated from.
    pub spec: CorpusSpec,
    /// Complete assembly source.
    pub source: String,
    /// The generator's own estimate of the dynamic instruction count
    /// (exact up to the final partial outer iteration).
    pub approx_dynamic_instructions: u64,
}

impl CorpusProgram {
    /// Assemble this corpus program.
    ///
    /// # Panics
    ///
    /// Panics if the source fails to assemble — generated sources are
    /// deterministic, so that is a bug in the generator.
    pub fn assemble(&self) -> cimon_asm::Program {
        match cimon_asm::assemble(&self.source) {
            Ok(p) => p,
            Err(e) => panic!("corpus program `{}` failed to assemble: {e}", self.name),
        }
    }
}

/// SplitMix64 — a tiny, high-quality seeded stream for the generator.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u32 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) as u32
    }

    fn below(&mut self, n: u32) -> u32 {
        self.next() % n.max(1)
    }
}

/// Scratch registers random bodies draw from. `$t7`–`$t9` are reserved
/// for corpus plumbing (indirect-call and self-modification targets),
/// `$s0`–`$s1` for loop counters.
const BODY_REGS: [&str; 6] = ["$t0", "$t1", "$t2", "$t3", "$t4", "$t5"];

/// Emit one random straight-line instruction; returns nothing, always
/// exactly one dynamic instruction.
fn emit_body_op(src: &mut String, rng: &mut Stream) {
    let a = BODY_REGS[rng.below(6) as usize];
    let b = BODY_REGS[rng.below(6) as usize];
    let c = BODY_REGS[rng.below(6) as usize];
    match rng.below(10) {
        0 => {
            let _ = writeln!(src, "    addu {a}, {b}, {c}");
        }
        1 => {
            let _ = writeln!(src, "    subu {a}, {b}, {c}");
        }
        2 => {
            let _ = writeln!(src, "    xor {a}, {b}, {c}");
        }
        3 => {
            let _ = writeln!(src, "    and {a}, {b}, {c}");
        }
        4 => {
            let _ = writeln!(src, "    addiu {a}, {b}, {}", rng.next() as i32 % 100);
        }
        5 => {
            let _ = writeln!(src, "    sll {a}, {b}, {}", rng.below(8));
        }
        6 => {
            let _ = writeln!(src, "    lw {a}, {}($gp)", rng.below(64) * 4);
        }
        7 => {
            let _ = writeln!(src, "    sw {a}, {}($gp)", rng.below(64) * 4);
        }
        8 => {
            let _ = writeln!(src, "    mult {a}, {b}");
        }
        _ => {
            let _ = writeln!(src, "    mflo {a}");
        }
    }
}

/// Generate one corpus program from a spec.
pub fn generate(spec: &CorpusSpec) -> CorpusProgram {
    let mut rng = Stream(spec.seed);
    let mut src = String::from("    .data\nbuf: .word ");
    for i in 0..64 {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(src, "{sep}{}", rng.next());
    }
    src.push_str("\n    .text\nmain:\n");
    for r in BODY_REGS {
        let _ = writeln!(src, "    li {r}, {}", rng.next() as i32 % 500);
    }
    let _ = writeln!(src, "    j entry");

    // --- Subroutines: straight-line bodies ending in `jr $ra`. They
    // only touch BODY_REGS, so callers' loop counters survive. ---
    let n_funcs = 3 + rng.below(3) as usize;
    let mut func_cost = Vec::with_capacity(n_funcs);
    for f in 0..n_funcs {
        let _ = writeln!(src, "F{f}:");
        let body = 3 + rng.below(8);
        for _ in 0..body {
            emit_body_op(&mut src, &mut rng);
        }
        let _ = writeln!(src, "    jr $ra");
        // body + jr.
        func_cost.push(body as u64 + 1);
    }

    // --- Main: one outer loop sized to hit the dynamic target, whose
    // body is a random mix of inner counted loops, direct and indirect
    // calls, and benign self-modifying stores. ---
    let _ = writeln!(src, "entry:");
    let mut outer_body = String::new();
    // Dynamic instructions per outer iteration, tracked exactly.
    let mut per_iter: u64 = 0;
    let n_segments = 3 + rng.below(4);
    let mut selfmod_sites = 0;
    for l in 0..n_segments {
        match rng.below(5) {
            // Inner counted loop over a random straight-line body.
            0..=2 => {
                let trips = (2 + rng.below(30)) as u64;
                let body = 1 + rng.below(6);
                let _ = writeln!(outer_body, "    li $s0, {trips}");
                let _ = writeln!(outer_body, "I{l}:");
                for _ in 0..body {
                    emit_body_op(&mut outer_body, &mut rng);
                }
                let _ = writeln!(outer_body, "    addiu $s0, $s0, -1");
                let _ = writeln!(outer_body, "    bnez $s0, I{l}");
                per_iter += 1 + trips * (body as u64 + 2);
            }
            // A call — half direct (`jal`), half indirect (`la`+`jalr`).
            3 => {
                let f = rng.below(n_funcs as u32) as usize;
                if rng.below(2) == 0 {
                    let _ = writeln!(outer_body, "    jal F{f}");
                    per_iter += 1 + func_cost[f];
                } else {
                    let _ = writeln!(outer_body, "    la $t7, F{f}");
                    let _ = writeln!(outer_body, "    jalr $t7");
                    // la expands to lui+ori.
                    per_iter += 3 + func_cost[f];
                }
            }
            // A benign self-modifying store: read an instruction word
            // out of the text segment and write it straight back. The
            // bytes do not change, so monitored runs stay clean, but
            // the store lands in text and drives every invalidation
            // path (validated-hash bitmap, predecoded image, chains).
            _ => {
                let site = selfmod_sites;
                selfmod_sites += 1;
                let _ = writeln!(outer_body, "SM{site}:");
                let _ = writeln!(outer_body, "    la $t8, SM{site}");
                let _ = writeln!(outer_body, "    lw $t9, 0($t8)");
                let _ = writeln!(outer_body, "    sw $t9, 0($t8)");
                // lui+ori+lw+sw.
                per_iter += 4;
            }
        }
    }
    // Outer-loop bookkeeping: decrement + branch.
    per_iter += 2;
    let prologue = 6 /* li */ + 1 /* j entry */ + 1 /* li $s1 */;
    let epilogue = 3;
    let budget = spec
        .target_dynamic_instructions
        .saturating_sub(prologue + epilogue);
    let outer_trips = (budget / per_iter).clamp(1, u32::MAX as u64);
    let _ = writeln!(src, "    li $s1, {outer_trips}");
    let _ = writeln!(src, "OUTER:");
    src.push_str(&outer_body);
    let _ = writeln!(src, "    addiu $s1, $s1, -1");
    let _ = writeln!(src, "    bnez $s1, OUTER");
    src.push_str("    move $a0, $t0\n    li $v0, 10\n    syscall\n");

    CorpusProgram {
        name: format!(
            "corpus-{:x}-{}",
            spec.seed, spec.target_dynamic_instructions
        ),
        spec: *spec,
        source: src,
        approx_dynamic_instructions: prologue + epilogue + outer_trips * per_iter,
    }
}

/// A small program (~50k dynamic instructions) — smoke-test sized.
pub fn small(seed: u64) -> CorpusProgram {
    generate(&CorpusSpec {
        seed,
        target_dynamic_instructions: 50_000,
    })
}

/// A medium program (~250k dynamic instructions).
pub fn medium(seed: u64) -> CorpusProgram {
    generate(&CorpusSpec {
        seed,
        target_dynamic_instructions: 250_000,
    })
}

/// A large program (~1M dynamic instructions) — the splice-scaling
/// subject.
pub fn large(seed: u64) -> CorpusProgram {
    generate(&CorpusSpec {
        seed,
        target_dynamic_instructions: 1_000_000,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = CorpusSpec {
            seed: 7,
            target_dynamic_instructions: 10_000,
        };
        assert_eq!(generate(&spec).source, generate(&spec).source);
        assert_ne!(
            generate(&spec).source,
            generate(&CorpusSpec { seed: 8, ..spec }).source
        );
    }

    #[test]
    fn corpus_programs_assemble_and_scale() {
        for seed in [1u64, 2, 3] {
            let p = small(seed);
            let prog = p.assemble();
            assert!(!prog.image.text.bytes.is_empty());
            assert!(p.approx_dynamic_instructions >= 10_000);
        }
        let big = generate(&CorpusSpec {
            seed: 1,
            target_dynamic_instructions: 1_000_000,
        });
        // Sized from exact per-iteration cost: within one outer
        // iteration of the target.
        let got = big.approx_dynamic_instructions;
        assert!((900_000..=1_100_000).contains(&got), "{got}");
    }

    #[test]
    fn sources_never_read_the_cycle_counter() {
        for seed in 0u64..8 {
            let p = medium(seed);
            assert!(
                !p.source.contains("li $v0, 30"),
                "corpus must stay spliceable"
            );
        }
    }
}
