//! `dijkstra` — all-pairs-ish shortest paths (MiBench network).
//!
//! The classic O(N²) Dijkstra over a dense adjacency matrix, run from
//! several source nodes, exactly like MiBench's `dijkstra_large` walks
//! repeated single-source problems. Two nested loops (min-selection and
//! relaxation) dominate; the block working set is moderate, so an
//! 8-entry IHT already captures most of it — matching the paper's 5.1%
//! → 0% overhead drop from CIC8 to CIC16.

use crate::{lcg_next, word_table, Workload};

/// Number of nodes.
pub const N: u32 = 20;
/// Number of source nodes to solve from.
pub const SOURCES: u32 = 8;
/// LCG seed for edge weights.
pub const SEED: u32 = 0xbeef_cafe;
/// "Infinity" distance.
pub const INF: u32 = 0x0fff_ffff;

/// Generate the edge-weight matrix (row-major, `N*N` words, weights
/// 1..=15, 0 self-loops).
pub fn adjacency() -> Vec<u32> {
    let mut x = SEED;
    let n = N as usize;
    let mut m = vec![0u32; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                x = lcg_next(x);
                m[i * n + j] = (x >> 16) % 15 + 1;
            }
        }
    }
    m
}

/// Rust reference: sum of all distances from each source.
pub fn reference() -> u32 {
    let m = adjacency();
    let n = N as usize;
    let mut total: u32 = 0;
    for src in 0..SOURCES as usize {
        let mut dist = vec![INF; n];
        let mut visited = vec![false; n];
        dist[src] = 0;
        for _ in 0..n {
            // Select the unvisited node with the smallest distance.
            let mut best = usize::MAX;
            let mut best_d = INF + 1;
            for v in 0..n {
                if !visited[v] && dist[v] < best_d {
                    best_d = dist[v];
                    best = v;
                }
            }
            if best == usize::MAX {
                break;
            }
            visited[best] = true;
            for v in 0..n {
                let w = m[best * n + v];
                if w != 0 && !visited[v] {
                    let cand = dist[best].wrapping_add(w);
                    if cand < dist[v] {
                        dist[v] = cand;
                    }
                }
            }
        }
        for d in dist.iter().take(n) {
            total = total.wrapping_add(*d);
        }
    }
    total
}

/// Build the workload.
pub fn build() -> Workload {
    let adj = word_table("adj", &adjacency());
    let n = N;
    let nbytes = N * 4;
    let source = format!(
        r#"
# dijkstra: O(N^2) single-source shortest paths from {SOURCES} sources,
# N = {n} nodes, dense adjacency matrix.
    .data
{adj}
dist:
    .space {nbytes}
visited:
    .space {nbytes}

    .text
main:
    li   $s7, 0                # total
    li   $s6, 0                # src
src_loop:
    # ---- init dist/visited ----
    li   $t0, 0
    la   $t1, dist
    la   $t2, visited
init:
    li   $t3, {INF}
    sw   $t3, 0($t1)
    sw   $zero, 0($t2)
    addiu $t1, $t1, 4
    addiu $t2, $t2, 4
    addiu $t0, $t0, 1
    li   $t4, {n}
    blt  $t0, $t4, init
    # dist[src] = 0
    la   $t1, dist
    sll  $t2, $s6, 2
    addu $t1, $t1, $t2
    sw   $zero, 0($t1)

    li   $s5, 0                # iteration counter
iter_loop:
    # ---- select unvisited min: s0 = best index, s1 = best dist ----
    li   $s0, -1
    li   $s1, {INF}
    addiu $s1, $s1, 1
    li   $t0, 0                # v
min_loop:
    sll  $t1, $t0, 2
    la   $t2, visited
    addu $t2, $t2, $t1
    lw   $t3, 0($t2)
    bnez $t3, min_next
    la   $t2, dist
    addu $t2, $t2, $t1
    lw   $t3, 0($t2)
    bgeu $t3, $s1, min_next
    move $s1, $t3
    move $s0, $t0
min_next:
    addiu $t0, $t0, 1
    li   $t4, {n}
    blt  $t0, $t4, min_loop

    li   $t0, -1
    beq  $s0, $t0, src_done    # no reachable node left

    # visited[best] = 1
    sll  $t1, $s0, 2
    la   $t2, visited
    addu $t2, $t2, $t1
    li   $t3, 1
    sw   $t3, 0($t2)

    # ---- relax neighbours of best (s0) ----
    # row base = adj + best*N*4
    li   $t0, {n}
    mul  $t1, $s0, $t0
    sll  $t1, $t1, 2
    la   $t2, adj
    addu $s2, $t2, $t1         # row pointer
    li   $t0, 0                # v
relax_loop:
    sll  $t1, $t0, 2
    addu $t3, $s2, $t1
    lw   $t4, 0($t3)           # w = adj[best][v]
    beqz $t4, relax_next
    la   $t3, visited
    addu $t3, $t3, $t1
    lw   $t5, 0($t3)
    bnez $t5, relax_next
    addu $t6, $s1, $t4         # cand = dist[best] + w
    la   $t3, dist
    addu $t3, $t3, $t1
    lw   $t7, 0($t3)
    bgeu $t6, $t7, relax_next
    sw   $t6, 0($t3)
relax_next:
    addiu $t0, $t0, 1
    li   $t4, {n}
    blt  $t0, $t4, relax_loop

    addiu $s5, $s5, 1
    li   $t4, {n}
    blt  $s5, $t4, iter_loop

src_done:
    # total += sum(dist)
    la   $t1, dist
    li   $t0, 0
sum_loop:
    lw   $t2, 0($t1)
    addu $s7, $s7, $t2
    addiu $t1, $t1, 4
    addiu $t0, $t0, 1
    li   $t4, {n}
    blt  $t0, $t4, sum_loop

    addiu $s6, $s6, 1
    li   $t4, {SOURCES}
    blt  $s6, $t4, src_loop

    move $a0, $s7
    li   $v0, 10
    syscall
"#
    );
    Workload {
        name: "dijkstra",
        source,
        expected_exit: reference(),
        description: "dense-graph Dijkstra from several sources (nested scan/relax loops)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimon_pipeline::{Processor, ProcessorConfig, RunOutcome};

    #[test]
    fn distances_are_reachable() {
        // With dense positive weights every node is reachable: the total
        // must be far below even one INF contribution.
        assert!(reference() < INF);
    }

    #[test]
    fn runs_to_expected_exit() {
        let w = build();
        let prog = w.assemble();
        let mut cpu = Processor::new(&prog.image, ProcessorConfig::baseline());
        assert_eq!(
            cpu.run(),
            RunOutcome::Exited {
                code: w.expected_exit
            }
        );
    }
}
