//! # cimon-workloads — the MiBench-like benchmark suite
//!
//! The paper evaluates on nine MiBench applications. MiBench is C code
//! compiled for SimpleScalar's PISA with external input files — neither
//! of which exists in this environment — so this crate provides
//! same-named kernels written directly in `cimon` assembly, each
//! implementing the *same algorithm* as its namesake (see `DESIGN.md`,
//! substitution 1). What the paper's experiments consume is the
//! workloads' basic-block structure and the temporal locality of block
//! execution; the kernels are shaped to reproduce those characters:
//!
//! | workload     | algorithm                           | block-locality character |
//! |--------------|-------------------------------------|---------------------------|
//! | bitcount     | 3 bit-counting methods              | tiny loops, hot            |
//! | basicmath    | isqrt/cbrt/gcd/deg-rad              | several phases             |
//! | dijkstra     | adjacency-matrix shortest paths     | two nested loops           |
//! | patricia     | bit-trie insert/lookup              | pointer chasing            |
//! | blowfish     | 16-round Feistel enc/dec            | alternating code paths     |
//! | rijndael     | AES-like SPN rounds                 | phase working set ≈ 8–16   |
//! | sha          | real SHA-1 compression              | phase working set ≈ 8–16   |
//! | stringsearch | BMH over many patterns              | poor locality, many blocks |
//! | susan        | 3×3 image smoothing + corner count  | long inner loops           |
//!
//! Every workload carries its expected exit code, computed by a Rust
//! reference implementation of the same algorithm; the harness asserts
//! the simulated run reproduces it bit-exactly.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

pub mod basicmath;
pub mod bitcount;
pub mod blowfish;
pub mod corpus;
pub mod dijkstra;
pub mod patricia;
pub mod rijndael;
pub mod sha;
pub mod stringsearch;
pub mod susan;

/// Process-wide count of [`Workload::assemble`] calls, so experiment
/// harnesses can assert they assemble each workload exactly once.
static ASSEMBLIES: AtomicUsize = AtomicUsize::new(0);

/// How many times any workload has been assembled in this process.
pub fn assembly_count() -> usize {
    ASSEMBLIES.load(Ordering::Relaxed)
}

/// A ready-to-assemble benchmark program.
#[derive(Clone, Debug)]
pub struct Workload {
    /// MiBench-style name.
    pub name: &'static str,
    /// Complete assembly source.
    pub source: String,
    /// Exit code the program must produce (computed by the Rust
    /// reference implementation).
    pub expected_exit: u32,
    /// One-line description.
    pub description: &'static str,
}

impl Workload {
    /// Assemble this workload.
    ///
    /// # Panics
    ///
    /// Panics if the source fails to assemble — workload sources are
    /// fixed at build time, so that is a bug in this crate.
    pub fn assemble(&self) -> cimon_asm::Program {
        ASSEMBLIES.fetch_add(1, Ordering::Relaxed);
        match cimon_asm::assemble(&self.source) {
            Ok(p) => p,
            Err(e) => panic!("workload `{}` failed to assemble: {e}", self.name),
        }
    }
}

/// A workload assembled once and shared: the registry entry.
#[derive(Clone, Debug)]
pub struct AssembledWorkload {
    /// MiBench-style name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Exit code the program must produce.
    pub expected_exit: u32,
    /// The full assembler output (image + symbols + listing).
    pub program: Arc<cimon_asm::Program>,
    /// The loadable image, shareable across experiment runs.
    pub image: Arc<cimon_mem::ProgramImage>,
}

static REGISTRY: OnceLock<Vec<AssembledWorkload>> = OnceLock::new();

/// The name → assembled-program registry, in the paper's Figure-6
/// order. Each workload is assembled exactly once per process; every
/// caller shares the same [`Arc`]ed images, so experiment grids never
/// re-run the assembler and never pattern-match names by hand.
pub fn registry() -> &'static [AssembledWorkload] {
    REGISTRY.get_or_init(|| {
        all()
            .into_iter()
            .map(|w| {
                let program = w.assemble();
                let image = Arc::new(program.image.clone());
                AssembledWorkload {
                    name: w.name,
                    description: w.description,
                    expected_exit: w.expected_exit,
                    program: Arc::new(program),
                    image,
                }
            })
            .collect()
    })
}

/// Look an assembled workload up by name in the shared registry.
pub fn get(name: &str) -> Option<&'static AssembledWorkload> {
    registry().iter().find(|w| w.name == name)
}

/// All nine workloads, in the paper's Figure-6 order.
pub fn all() -> Vec<Workload> {
    vec![
        basicmath::build(),
        susan::build(),
        dijkstra::build(),
        patricia::build(),
        blowfish::build(),
        rijndael::build(),
        sha::build(),
        stringsearch::build(),
        bitcount::build(),
    ]
}

/// Look a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// The deterministic 32-bit LCG (Numerical Recipes constants) used both
/// by the assembly kernels and the Rust references to generate inputs.
pub fn lcg_next(x: u32) -> u32 {
    x.wrapping_mul(1664525).wrapping_add(1013904223)
}

/// A sequence of `n` LCG values starting after `seed`.
pub fn lcg_sequence(seed: u32, n: usize) -> Vec<u32> {
    let mut v = Vec::with_capacity(n);
    let mut x = seed;
    for _ in 0..n {
        x = lcg_next(x);
        v.push(x);
    }
    v
}

/// Render a `.word` table for generated input data, 8 values per line.
pub(crate) fn word_table(label: &str, values: &[u32]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{label}:\n");
    for chunk in values.chunks(8) {
        let items: Vec<String> = chunk.iter().map(|v| format!("0x{v:08x}")).collect();
        let _ = writeln!(out, "    .word {}", items.join(", "));
    }
    out
}

/// Render a `.byte` table, 16 values per line.
pub(crate) fn byte_table(label: &str, values: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("{label}:\n");
    for chunk in values.chunks(16) {
        let items: Vec<String> = chunk.iter().map(|v| format!("{v}")).collect();
        let _ = writeln!(out, "    .byte {}", items.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_matches_constants() {
        assert_eq!(lcg_next(0), 1013904223);
        assert_eq!(lcg_next(1), 1015568748);
        let seq = lcg_sequence(12345, 3);
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[0], lcg_next(12345));
        assert_eq!(seq[1], lcg_next(seq[0]));
    }

    #[test]
    fn all_nine_present_and_distinct() {
        let ws = all();
        assert_eq!(ws.len(), 9);
        let mut names: Vec<_> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
        for paper_name in [
            "basicmath",
            "susan",
            "dijkstra",
            "patricia",
            "blowfish",
            "rijndael",
            "sha",
            "stringsearch",
            "bitcount",
        ] {
            assert!(by_name(paper_name).is_some(), "missing {paper_name}");
        }
        assert!(by_name("quake").is_none());
    }

    #[test]
    fn registry_assembles_each_workload_exactly_once() {
        let before = assembly_count();
        let reg = registry();
        let again = registry();
        assert_eq!(reg.len(), 9);
        assert!(std::ptr::eq(reg, again), "registry must be cached");
        // However many assemblies other tests performed, the two
        // registry() calls above added at most one suite's worth.
        assert!(assembly_count() <= before + 9);
        let d = get("dijkstra").expect("dijkstra registered");
        assert_eq!(d.image.entry, d.program.image.entry);
        assert!(get("quake").is_none());
    }

    #[test]
    fn word_table_renders() {
        let t = word_table("tbl", &[1, 2, 3]);
        assert!(t.starts_with("tbl:\n"));
        assert!(t.contains(".word 0x00000001, 0x00000002, 0x00000003"));
    }

    #[test]
    fn byte_table_renders() {
        let t = byte_table("b", &[9, 10]);
        assert!(t.contains(".byte 9, 10"));
    }
}
