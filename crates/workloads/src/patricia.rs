//! `patricia` — digital search trie insert/lookup (MiBench network).
//!
//! MiBench's patricia builds a Patricia trie of network addresses and
//! streams lookups through it. This kernel implements a digital search
//! trie over 32-bit keys — the same bit-steered descent and
//! pointer-chasing access pattern, without the path-compression
//! bookkeeping (the dynamic behaviour the monitoring experiments
//! consume — block mix and data-dependent branch outcomes per level —
//! is the same; see DESIGN.md substitution 1).

use crate::{lcg_sequence, word_table, Workload};

/// Keys inserted into the trie.
pub const INSERTS: u32 = 64;
/// Lookups streamed through it.
pub const LOOKUPS: u32 = 800;
/// Seed for inserted keys.
pub const SEED_INS: u32 = 0x7ead_1234;
/// Seed for the unknown-key stream.
pub const SEED_MISS: u32 = 0x5eed_0002;
/// Maximum node pool (root at index 1).
pub const MAX_NODES: u32 = INSERTS + 2;

/// The inserted key set.
pub fn insert_keys() -> Vec<u32> {
    lcg_sequence(SEED_INS, INSERTS as usize)
}

/// The lookup stream: alternating known and (probably) unknown keys.
pub fn lookup_keys() -> Vec<u32> {
    let ins = insert_keys();
    let miss = lcg_sequence(SEED_MISS, LOOKUPS as usize);
    (0..LOOKUPS as usize)
        .map(|i| {
            if i % 2 == 0 {
                ins[(i / 2) % ins.len()]
            } else {
                miss[i]
            }
        })
        .collect()
}

/// Reference digital-search-trie implementation.
struct Dst {
    key: Vec<u32>,
    left: Vec<u32>,
    right: Vec<u32>,
    root: u32,
    next: u32,
}

impl Dst {
    fn new() -> Dst {
        let n = MAX_NODES as usize;
        Dst {
            key: vec![0; n],
            left: vec![0; n],
            right: vec![0; n],
            root: 0,
            next: 1,
        }
    }

    fn alloc(&mut self, k: u32) -> u32 {
        let idx = self.next;
        self.next += 1;
        self.key[idx as usize] = k;
        idx
    }

    fn insert(&mut self, k: u32) {
        if self.root == 0 {
            self.root = self.alloc(k);
            return;
        }
        let mut cur = self.root;
        let mut depth = 0u32;
        loop {
            if self.key[cur as usize] == k {
                return;
            }
            let bit = (k >> (depth & 31)) & 1;
            depth += 1;
            let child = if bit == 0 {
                self.left[cur as usize]
            } else {
                self.right[cur as usize]
            };
            if child == 0 {
                let idx = self.alloc(k);
                if bit == 0 {
                    self.left[cur as usize] = idx;
                } else {
                    self.right[cur as usize] = idx;
                }
                return;
            }
            cur = child;
        }
    }

    /// Returns depth+1 when found, 0 when absent.
    fn search(&self, k: u32) -> u32 {
        let mut cur = self.root;
        let mut depth = 0u32;
        while cur != 0 {
            if self.key[cur as usize] == k {
                return depth + 1;
            }
            let bit = (k >> (depth & 31)) & 1;
            depth += 1;
            cur = if bit == 0 {
                self.left[cur as usize]
            } else {
                self.right[cur as usize]
            };
        }
        0
    }
}

/// Rust reference result.
pub fn reference() -> u32 {
    let mut t = Dst::new();
    for k in insert_keys() {
        t.insert(k);
    }
    let mut acc: u32 = 0;
    for k in lookup_keys() {
        acc = acc.wrapping_add(t.search(k));
    }
    acc
}

/// Build the workload.
pub fn build() -> Workload {
    let ins = word_table("ins_keys", &insert_keys());
    let luk = word_table("luk_keys", &lookup_keys());
    let pool_bytes = MAX_NODES * 4;
    let child_bytes = MAX_NODES * 8;
    let source = format!(
        r#"
# patricia: digital search trie, {INSERTS} inserts then {LOOKUPS} lookups.
    .data
{ins}
{luk}
keyarr:
    .space {pool_bytes}
childs:
    .space {child_bytes}       # childs[2*i] = left(i), childs[2*i+1] = right(i)

    .text
main:
    li   $s4, 0                # root index (0 = null)
    li   $s5, 1                # next free node index

    # ---- build phase ----
    li   $s6, 0
build_loop:
    la   $t0, ins_keys
    sll  $t1, $s6, 2
    addu $t0, $t0, $t1
    lw   $a0, 0($t0)
    jal  trie_insert
    addiu $s6, $s6, 1
    li   $t4, {INSERTS}
    blt  $s6, $t4, build_loop

    # ---- lookup phase ----
    li   $s7, 0                # acc
    li   $s6, 0
lookup_loop:
    la   $t0, luk_keys
    sll  $t1, $s6, 2
    addu $t0, $t0, $t1
    lw   $a0, 0($t0)
    jal  trie_search
    addu $s7, $s7, $v0
    addiu $s6, $s6, 1
    li   $t4, {LOOKUPS}
    blt  $s6, $t4, lookup_loop

    move $a0, $s7
    li   $v0, 10
    syscall

# ---- insert a0 into the trie ----
trie_insert:
    bnez $s4, ins_descend
    # empty tree: root = alloc(a0)
    move $t0, $s5
    addiu $s5, $s5, 1
    sll  $t1, $t0, 2
    la   $t2, keyarr
    addu $t2, $t2, $t1
    sw   $a0, 0($t2)
    move $s4, $t0
    jr   $ra
ins_descend:
    move $t0, $s4              # cur
    li   $t1, 0                # depth
ins_loop:
    sll  $t2, $t0, 2
    la   $t3, keyarr
    addu $t3, $t3, $t2
    lw   $t4, 0($t3)
    beq  $t4, $a0, ins_done    # already present
    andi $t5, $t1, 31
    srlv $t5, $a0, $t5
    andi $t5, $t5, 1           # bit
    addiu $t1, $t1, 1
    # &childs[2*cur + bit], branch-free (MiBench's t->branch[bit])
    sll  $t6, $t0, 1
    addu $t6, $t6, $t5
    sll  $t6, $t6, 2
    la   $t7, childs
    addu $t6, $t7, $t6
    lw   $t7, 0($t6)
    beqz $t7, ins_alloc
    move $t0, $t7
    b    ins_loop
ins_alloc:
    move $t8, $s5              # new index
    addiu $s5, $s5, 1
    sw   $t8, 0($t6)           # link
    sll  $t2, $t8, 2
    la   $t3, keyarr
    addu $t3, $t3, $t2
    sw   $a0, 0($t3)
ins_done:
    jr   $ra

# ---- v0 = depth+1 if a0 found, else 0 ----
trie_search:
    move $t0, $s4              # cur
    li   $t1, 0                # depth
    li   $v0, 0
srch_loop:
    beqz $t0, srch_done
    sll  $t2, $t0, 2
    la   $t3, keyarr
    addu $t3, $t3, $t2
    lw   $t4, 0($t3)
    beq  $t4, $a0, srch_found
    andi $t5, $t1, 31
    srlv $t5, $a0, $t5
    andi $t5, $t5, 1
    addiu $t1, $t1, 1
    # cur = childs[2*cur + bit], branch-free
    sll  $t6, $t0, 1
    addu $t6, $t6, $t5
    sll  $t6, $t6, 2
    la   $t7, childs
    addu $t6, $t7, $t6
    lw   $t0, 0($t6)
    b    srch_loop
srch_found:
    addiu $v0, $t1, 1
srch_done:
    jr   $ra
"#
    );
    Workload {
        name: "patricia",
        source,
        expected_exit: reference(),
        description: "bit-steered trie build plus a stream of hit/miss lookups",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimon_pipeline::{Processor, ProcessorConfig, RunOutcome};

    #[test]
    fn trie_reference_behaviour() {
        let mut t = Dst::new();
        t.insert(5);
        t.insert(5); // duplicate: no growth
        assert_eq!(t.next, 2);
        assert_eq!(t.search(5), 1);
        assert_eq!(t.search(6), 0);
        t.insert(4); // bit0 = 0 → left of root
        assert_eq!(t.search(4), 2);
    }

    #[test]
    fn node_pool_is_large_enough() {
        let mut t = Dst::new();
        for k in insert_keys() {
            t.insert(k);
        }
        assert!(t.next <= MAX_NODES);
    }

    #[test]
    fn lookups_mix_hits_and_misses() {
        let mut t = Dst::new();
        for k in insert_keys() {
            t.insert(k);
        }
        let hits = lookup_keys().iter().filter(|&&k| t.search(k) > 0).count();
        assert!(hits >= (LOOKUPS / 2) as usize);
        assert!(hits < LOOKUPS as usize);
    }

    #[test]
    fn runs_to_expected_exit() {
        let w = build();
        let prog = w.assemble();
        let mut cpu = Processor::new(&prog.image, ProcessorConfig::baseline());
        assert_eq!(
            cpu.run(),
            RunOutcome::Exited {
                code: w.expected_exit
            }
        );
    }
}
