//! `rijndael` — AES-like substitution-permutation rounds (MiBench
//! security).
//!
//! The real Rijndael round structure over a 16-byte column-major state:
//! SubBytes through a 256-entry S-box, ShiftRows, MixColumns with
//! `xtime` GF(2⁸) doubling, and AddRoundKey — ten rounds, the last one
//! skipping MixColumns, exactly as AES-128 does. The S-box is an
//! LCG-shuffled permutation and the round keys are LCG words instead of
//! the Rijndael key schedule: neither changes a single executed branch
//! in the round path (see DESIGN.md substitution 1).
//!
//! The per-round phase chain (4 sub-kernels × 10 rounds) gives the
//! 8-to-16-entry working-set signature the paper reports: 20.7%
//! overhead at CIC8 collapsing to 0% at CIC16.

use crate::{byte_table, lcg_sequence, word_table, Workload};

/// 16-byte blocks encrypted.
pub const BLOCKS: u32 = 36;
/// Rounds per block (AES-128).
pub const ROUNDS: u32 = 10;
/// Seed for the S-box shuffle.
pub const SEED_SBOX: u32 = 0xae5_b0c5;
/// Seed for round keys.
pub const SEED_KEYS: u32 = 0xae5_4e75;
/// Seed for plaintext.
pub const SEED_DATA: u32 = 0xae5_da7a;

/// The S-box: a Fisher–Yates permutation of 0..=255 driven by the LCG.
pub fn sbox() -> Vec<u8> {
    let mut b: Vec<u8> = (0..=255).collect();
    let rnd = lcg_sequence(SEED_SBOX, 255);
    for i in (1..256usize).rev() {
        let j = (rnd[255 - i] as usize) % (i + 1);
        b.swap(i, j);
    }
    b
}

/// Round keys: (ROUNDS + 1) × 16 bytes.
pub fn round_keys() -> Vec<u8> {
    lcg_sequence(SEED_KEYS, (ROUNDS as usize + 1) * 4)
        .into_iter()
        .flat_map(|w| w.to_le_bytes())
        .collect()
}

/// Plaintext blocks, 16 bytes each.
pub fn plaintext() -> Vec<u8> {
    lcg_sequence(SEED_DATA, 4 * BLOCKS as usize)
        .into_iter()
        .flat_map(|w| w.to_le_bytes())
        .collect()
}

fn xtime(x: u8) -> u8 {
    let doubled = (x as u16) << 1;
    (if doubled & 0x100 != 0 {
        doubled ^ 0x1b
    } else {
        doubled
    }) as u8
}

/// ShiftRows source index table: `state'[i] = state[SHIFT[i]]` with the
/// state laid out column-major (byte `i` = row `i % 4`, column `i / 4`).
pub const SHIFT: [usize; 16] = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11];

/// Encrypt one 16-byte block (reference).
pub fn encrypt_block(state: &mut [u8; 16], sbox: &[u8], keys: &[u8]) {
    // Initial AddRoundKey.
    for (i, b) in state.iter_mut().enumerate() {
        *b ^= keys[i];
    }
    for round in 1..=ROUNDS as usize {
        // SubBytes.
        for b in state.iter_mut() {
            *b = sbox[*b as usize];
        }
        // ShiftRows.
        let old = *state;
        for i in 0..16 {
            state[i] = old[SHIFT[i]];
        }
        // MixColumns (skipped in the last round).
        if round != ROUNDS as usize {
            for c in 0..4 {
                let col = &mut state[4 * c..4 * c + 4];
                let t = col[0] ^ col[1] ^ col[2] ^ col[3];
                let u = col[0];
                let (a0, a1, a2, a3) = (col[0], col[1], col[2], col[3]);
                col[0] = a0 ^ t ^ xtime(a0 ^ a1);
                col[1] = a1 ^ t ^ xtime(a1 ^ a2);
                col[2] = a2 ^ t ^ xtime(a2 ^ a3);
                col[3] = a3 ^ t ^ xtime(a3 ^ u);
            }
        }
        // AddRoundKey.
        for (i, b) in state.iter_mut().enumerate() {
            *b ^= keys[16 * round + i];
        }
    }
}

/// Rust reference: fold all ciphertext bytes.
pub fn reference() -> u32 {
    let sb = sbox();
    let keys = round_keys();
    let pt = plaintext();
    let mut acc: u32 = 0;
    for block in pt.chunks_exact(16) {
        let mut state = [0u8; 16];
        state.copy_from_slice(block);
        encrypt_block(&mut state, &sb, &keys);
        for (i, &b) in state.iter().enumerate() {
            acc = acc.wrapping_add((b as u32) << ((i % 4) * 8));
        }
    }
    acc
}

/// Build the workload.
pub fn build() -> Workload {
    let sb = byte_table("sbox", &sbox());
    let keys = byte_table("rkeys", &round_keys());
    let pt = byte_table("ptext", &plaintext());
    let shift_words: Vec<u32> = SHIFT.iter().map(|&v| v as u32).collect();
    let shift = word_table("shift_tab", &shift_words);
    let source = format!(
        r#"
# rijndael: 10 AES-like SPN rounds over {BLOCKS} 16-byte blocks.
    .data
{sb}
{keys}
{pt}
{shift}
state:
    .space 16
tmp16:
    .space 16

    .text
main:
    li   $s7, 0                # acc
    li   $s6, 0                # block index
blk_loop:
    # ---- load plaintext block into state, XOR key 0 ----
    la   $t0, ptext
    sll  $t1, $s6, 4
    addu $t0, $t0, $t1
    la   $t1, state
    la   $t2, rkeys
    li   $t3, 16
load_blk:
    lbu  $t4, 0($t0)
    lbu  $t5, 0($t2)
    xor  $t4, $t4, $t5
    sb   $t4, 0($t1)
    addiu $t0, $t0, 1
    addiu $t1, $t1, 1
    addiu $t2, $t2, 1
    addiu $t3, $t3, -1
    bnez $t3, load_blk

    li   $s5, 1                # round
round_loop:
    # ---- SubBytes ----
    la   $t0, state
    la   $t1, sbox
    li   $t3, 16
sub_loop:
    lbu  $t4, 0($t0)
    addu $t5, $t1, $t4
    lbu  $t4, 0($t5)
    sb   $t4, 0($t0)
    addiu $t0, $t0, 1
    addiu $t3, $t3, -1
    bnez $t3, sub_loop

    # ---- ShiftRows: tmp[i] = state[shift_tab[i]], copy back ----
    la   $t0, tmp16
    la   $t1, shift_tab
    la   $t2, state
    li   $t3, 0
shift_loop:
    sll  $t4, $t3, 2
    addu $t4, $t1, $t4
    lw   $t5, 0($t4)           # src index
    addu $t5, $t2, $t5
    lbu  $t5, 0($t5)
    addu $t6, $t0, $t3
    sb   $t5, 0($t6)
    addiu $t3, $t3, 1
    li   $t7, 16
    blt  $t3, $t7, shift_loop
    # copy tmp -> state
    la   $t0, state
    la   $t1, tmp16
    li   $t3, 16
copy_loop:
    lbu  $t4, 0($t1)
    sb   $t4, 0($t0)
    addiu $t0, $t0, 1
    addiu $t1, $t1, 1
    addiu $t3, $t3, -1
    bnez $t3, copy_loop

    # ---- MixColumns (skip on last round) ----
    li   $t7, {ROUNDS}
    beq  $s5, $t7, add_key
    la   $s0, state
    li   $s1, 0                # column
mix_loop:
    lbu  $t0, 0($s0)           # a0
    lbu  $t1, 1($s0)           # a1
    lbu  $t2, 2($s0)           # a2
    lbu  $t3, 3($s0)           # a3
    xor  $t4, $t0, $t1
    xor  $t4, $t4, $t2
    xor  $t4, $t4, $t3         # t
    # xtime inlined branch-free: x2 = ((x<<1) ^ (0x11b & (0-(x>>7)))) & 0xff
    # col0 = a0 ^ t ^ xtime(a0^a1)
    xor  $t5, $t0, $t1
    sll  $t6, $t5, 1
    srl  $t5, $t5, 7
    subu $t5, $zero, $t5
    andi $t5, $t5, 0x11b
    xor  $t6, $t6, $t5
    andi $t6, $t6, 0xff
    xor  $t5, $t0, $t4
    xor  $t5, $t5, $t6
    # col1 = a1 ^ t ^ xtime(a1^a2)
    xor  $t6, $t1, $t2
    sll  $t7, $t6, 1
    srl  $t6, $t6, 7
    subu $t6, $zero, $t6
    andi $t6, $t6, 0x11b
    xor  $t7, $t7, $t6
    andi $t7, $t7, 0xff
    xor  $t6, $t1, $t4
    xor  $t6, $t6, $t7
    # col2 = a2 ^ t ^ xtime(a2^a3)
    xor  $t7, $t2, $t3
    sll  $t8, $t7, 1
    srl  $t7, $t7, 7
    subu $t7, $zero, $t7
    andi $t7, $t7, 0x11b
    xor  $t8, $t8, $t7
    andi $t8, $t8, 0xff
    xor  $t7, $t2, $t4
    xor  $t8, $t7, $t8
    # col3 = a3 ^ t ^ xtime(a3^a0_orig)
    xor  $t7, $t3, $t0
    sll  $t9, $t7, 1
    srl  $t7, $t7, 7
    subu $t7, $zero, $t7
    andi $t7, $t7, 0x11b
    xor  $t9, $t9, $t7
    andi $t9, $t9, 0xff
    xor  $t7, $t3, $t4
    xor  $t9, $t7, $t9
    sb   $t5, 0($s0)
    sb   $t6, 1($s0)
    sb   $t8, 2($s0)
    sb   $t9, 3($s0)
    addiu $s0, $s0, 4
    addiu $s1, $s1, 1
    li   $t7, 4
    blt  $s1, $t7, mix_loop

add_key:
    # ---- AddRoundKey: state ^= rkeys[16*round ..] ----
    la   $t0, state
    la   $t1, rkeys
    sll  $t2, $s5, 4
    addu $t1, $t1, $t2
    li   $t3, 16
key_loop:
    lbu  $t4, 0($t0)
    lbu  $t5, 0($t1)
    xor  $t4, $t4, $t5
    sb   $t4, 0($t0)
    addiu $t0, $t0, 1
    addiu $t1, $t1, 1
    addiu $t3, $t3, -1
    bnez $t3, key_loop

    addiu $s5, $s5, 1
    li   $t7, {ROUNDS}
    ble  $s5, $t7, round_loop

    # ---- fold ciphertext into acc ----
    la   $t0, state
    li   $t3, 0
fold_loop:
    addu $t1, $t0, $t3
    lbu  $t4, 0($t1)
    andi $t5, $t3, 3
    sll  $t5, $t5, 3
    sllv $t4, $t4, $t5
    addu $s7, $s7, $t4
    addiu $t3, $t3, 1
    li   $t7, 16
    blt  $t3, $t7, fold_loop

    addiu $s6, $s6, 1
    li   $t7, {BLOCKS}
    blt  $s6, $t7, blk_loop

    move $a0, $s7
    li   $v0, 10
    syscall
"#
    );
    Workload {
        name: "rijndael",
        source,
        expected_exit: reference(),
        description: "AES-like SubBytes/ShiftRows/MixColumns/AddRoundKey rounds",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimon_pipeline::{Processor, ProcessorConfig, RunOutcome};

    #[test]
    fn sbox_is_a_permutation() {
        let mut sb = sbox();
        sb.sort_unstable();
        let identity: Vec<u8> = (0..=255).collect();
        assert_eq!(sb, identity);
    }

    #[test]
    fn xtime_matches_gf256() {
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47); // wraps through the polynomial
    }

    #[test]
    fn shift_rows_table_is_a_permutation() {
        let mut s = SHIFT;
        s.sort_unstable();
        assert_eq!(s, core::array::from_fn::<usize, 16, _>(|i| i));
    }

    #[test]
    fn runs_to_expected_exit() {
        let w = build();
        let prog = w.assemble();
        let mut cpu = Processor::new(&prog.image, ProcessorConfig::baseline());
        assert_eq!(
            cpu.run(),
            RunOutcome::Exited {
                code: w.expected_exit
            }
        );
    }
}
