//! `sha` — SHA-1 compression (MiBench security).
//!
//! The genuine SHA-1 block transform in assembly: 16→80-word message
//! schedule expansion followed by 80 rounds whose round function and
//! constant are selected by a four-way branch chain on the round index.
//! Hashing `BLOCKS` 64-byte message blocks (no length padding — the
//! kernel measures the compression loop, which is where MiBench's sha
//! spends its time). The phase-structured round loop gives a block
//! working set that overflows an 8-entry IHT but fits 16, matching the
//! paper's 18.5% → 0.2% overhead collapse.

use crate::{lcg_sequence, word_table, Workload};

/// 64-byte message blocks hashed.
pub const BLOCKS: u32 = 24;
/// Seed for message content.
pub const SEED: u32 = 0x54ad_e001;

/// Message words (16 per block).
pub fn message() -> Vec<u32> {
    lcg_sequence(SEED, 16 * BLOCKS as usize)
}

/// Initial chaining state (the SHA-1 constants).
pub const H0: [u32; 5] = [
    0x6745_2301,
    0xefcd_ab89,
    0x98ba_dcfe,
    0x1032_5476,
    0xc3d2_e1f0,
];

/// One SHA-1 compression of `block` into state `h`.
pub fn compress(h: &mut [u32; 5], block: &[u32]) {
    debug_assert_eq!(block.len(), 16);
    let mut w = [0u32; 80];
    w[..16].copy_from_slice(block);
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }
    let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            0..=19 => ((b & c) | ((!b) & d), 0x5a82_7999u32),
            20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
            40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
            _ => (b ^ c ^ d, 0xca62_c1d6),
        };
        let t = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = t;
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
}

/// Rust reference: fold the final chaining state into one word.
pub fn reference() -> u32 {
    let msg = message();
    let mut h = H0;
    for block in msg.chunks_exact(16) {
        compress(&mut h, block);
    }
    h[0] ^ h[1] ^ h[2] ^ h[3] ^ h[4]
}

/// Build the workload.
pub fn build() -> Workload {
    let msg = word_table("message", &message());
    let source = format!(
        r#"
# sha: genuine SHA-1 compression over {BLOCKS} 64-byte blocks.
    .data
{msg}
wbuf:
    .space 320                 # w[80]

    .text
main:
    # chaining state in s0..s4
    li   $s0, 0x67452301
    li   $s1, 0xefcdab89
    li   $s2, 0x98badcfe
    li   $s3, 0x10325476
    li   $s4, 0xc3d2e1f0
    li   $s6, 0                # block index
sha_blocks:
    # ---- load 16 message words into wbuf ----
    la   $t0, message
    sll  $t1, $s6, 6           # 64 bytes per block
    addu $t0, $t0, $t1
    la   $t2, wbuf
    li   $t3, 16
load16:
    lw   $t4, 0($t0)
    sw   $t4, 0($t2)
    addiu $t0, $t0, 4
    addiu $t2, $t2, 4
    addiu $t3, $t3, -1
    bnez $t3, load16

    # ---- 80 rounds with on-the-fly schedule expansion ----
    move $t0, $s0              # a
    move $t1, $s1              # b
    move $t2, $s2              # c
    move $t3, $s3              # d
    move $t4, $s4              # e
    li   $s5, 0                # round i
rounds:
    li   $t8, 16
    blt  $s5, $t8, w_ready     # w[i] preloaded for the first 16 rounds
    # w[i] = rotl1(w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16])
    la   $t8, wbuf
    sll  $t9, $s5, 2
    addu $t8, $t8, $t9         # &w[i]
    lw   $t6, -12($t8)
    lw   $t7, -32($t8)
    xor  $t6, $t6, $t7
    lw   $t7, -56($t8)
    xor  $t6, $t6, $t7
    lw   $t7, -64($t8)
    xor  $t6, $t6, $t7
    sll  $t7, $t6, 1
    srl  $t6, $t6, 31
    or   $t6, $t6, $t7
    sw   $t6, 0($t8)
w_ready:
    li   $t8, 20
    blt  $s5, $t8, phase1
    li   $t8, 40
    blt  $s5, $t8, phase2
    li   $t8, 60
    blt  $s5, $t8, phase3
    # phase 4: f = b^c^d, k = 0xca62c1d6
    xor  $t5, $t1, $t2
    xor  $t5, $t5, $t3
    li   $t6, 0xca62c1d6
    b    round_body
phase1:
    # f = (b & c) | (~b & d), k = 0x5a827999
    and  $t5, $t1, $t2
    not  $t6, $t1
    and  $t6, $t6, $t3
    or   $t5, $t5, $t6
    li   $t6, 0x5a827999
    b    round_body
phase2:
    xor  $t5, $t1, $t2
    xor  $t5, $t5, $t3
    li   $t6, 0x6ed9eba1
    b    round_body
phase3:
    # f = (b&c) | (b&d) | (c&d)
    and  $t5, $t1, $t2
    and  $t7, $t1, $t3
    or   $t5, $t5, $t7
    and  $t7, $t2, $t3
    or   $t5, $t5, $t7
    li   $t6, 0x8f1bbcdc
round_body:
    # t = rotl5(a) + f + e + k + w[i]
    sll  $t7, $t0, 5
    srl  $t8, $t0, 27
    or   $t7, $t7, $t8
    addu $t7, $t7, $t5
    addu $t7, $t7, $t4
    addu $t7, $t7, $t6
    la   $t8, wbuf
    sll  $t9, $s5, 2
    addu $t8, $t8, $t9
    lw   $t8, 0($t8)
    addu $t7, $t7, $t8
    # e = d; d = c; c = rotl30(b); b = a; a = t
    move $t4, $t3
    move $t3, $t2
    sll  $t2, $t1, 30
    srl  $t8, $t1, 2
    or   $t2, $t2, $t8
    move $t1, $t0
    move $t0, $t7
    addiu $s5, $s5, 1
    li   $t8, 80
    blt  $s5, $t8, rounds

    # ---- fold back into the chaining state ----
    addu $s0, $s0, $t0
    addu $s1, $s1, $t1
    addu $s2, $s2, $t2
    addu $s3, $s3, $t3
    addu $s4, $s4, $t4

    addiu $s6, $s6, 1
    li   $t8, {BLOCKS}
    blt  $s6, $t8, sha_blocks

    # result = h0^h1^h2^h3^h4
    xor  $a0, $s0, $s1
    xor  $a0, $a0, $s2
    xor  $a0, $a0, $s3
    xor  $a0, $a0, $s4
    li   $v0, 10
    syscall
"#
    );
    Workload {
        name: "sha",
        source,
        expected_exit: reference(),
        description: "real SHA-1 message schedule and 80-round compression",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimon_pipeline::{Processor, ProcessorConfig, RunOutcome};

    #[test]
    fn compress_matches_known_sha1_vector() {
        // SHA-1("abc"): one padded block, digest starts a9993e36.
        let mut block = [0u32; 16];
        block[0] = u32::from_be_bytes(*b"abc\x80");
        block[15] = 24; // bit length
        let mut h = H0;
        compress(&mut h, &block);
        assert_eq!(h[0], 0xa999_3e36);
        assert_eq!(h[1], 0x4706_816a);
    }

    #[test]
    fn runs_to_expected_exit() {
        let w = build();
        let prog = w.assemble();
        let mut cpu = Processor::new(&prog.image, ProcessorConfig::baseline());
        assert_eq!(
            cpu.run(),
            RunOutcome::Exited {
                code: w.expected_exit
            }
        );
    }
}
