//! `stringsearch` — Boyer–Moore–Horspool over many patterns (MiBench
//! office).
//!
//! MiBench's stringsearch scans a set of strings for many patterns in
//! rotation, touching a different driver path per pattern each round —
//! the worst temporal locality in the suite. This kernel reproduces
//! that shape: eight patterns, each owning a fully specialised copy of
//! the BMH search code (as the original's generated per-string search
//! functions do), over a short text, cycled for many rounds in
//! *descending address order* — so the block working set exceeds a
//! 16-entry IHT and the OS's sequential prefetch cannot ride the
//! execution order. That is why the paper's stringsearch overhead
//! barely improves from CIC8 (50.1%) to CIC16 (49.4%).

use crate::{byte_table, lcg_sequence, Workload};
use std::fmt::Write as _;

/// Text length in bytes.
pub const TEXT_LEN: usize = 20;
/// Number of patterns.
pub const PATTERNS: usize = 8;
/// Pattern length.
pub const PAT_LEN: usize = 4;
/// Search rounds (each round searches all patterns).
pub const ROUNDS: u32 = 200;
/// Seed for text generation.
pub const SEED_TEXT: u32 = 0x7e57_0001;

/// The text: lowercase letters from the LCG.
pub fn text() -> Vec<u8> {
    lcg_sequence(SEED_TEXT, TEXT_LEN)
        .into_iter()
        .map(|x| b'a' + ((x >> 13) % 26) as u8)
        .collect()
}

/// The eight patterns: four present (slices of the text), four absent
/// (drawn from a disjoint alphabet region, so they can never match).
pub fn patterns() -> Vec<Vec<u8>> {
    let t = text();
    let mut out = Vec::with_capacity(PATTERNS);
    for i in 0..PATTERNS {
        if i % 2 == 0 {
            let off = (i / 2) * 4 + 2;
            out.push(t[off..off + PAT_LEN].to_vec());
        } else {
            // Uppercase letters never occur in the text.
            let pat: Vec<u8> = lcg_sequence(SEED_TEXT.wrapping_add(i as u32), PAT_LEN)
                .into_iter()
                .map(|x| b'A' + ((x >> 9) % 26) as u8)
                .collect();
            out.push(pat);
        }
    }
    out
}

/// BMH skip table for a pattern.
pub fn skip_table(pat: &[u8]) -> Vec<u8> {
    let m = pat.len();
    let mut skip = vec![m as u8; 256];
    for (j, &b) in pat.iter().enumerate().take(m - 1) {
        skip[b as usize] = (m - 1 - j) as u8;
    }
    skip
}

/// BMH search: returns 1-based match position, or 0.
pub fn bmh(text: &[u8], pat: &[u8], skip: &[u8]) -> u32 {
    let (n, m) = (text.len(), pat.len());
    let mut i = m - 1;
    while i < n {
        let mut j = (m - 1) as isize;
        let mut k = i as isize;
        while j >= 0 && text[k as usize] == pat[j as usize] {
            k -= 1;
            j -= 1;
        }
        if j < 0 {
            return (k + 2) as u32; // 1-based start of the match
        }
        i += skip[text[i] as usize] as usize;
    }
    0
}

/// Rust reference.
pub fn reference() -> u32 {
    let t = text();
    let pats = patterns();
    let skips: Vec<Vec<u8>> = pats.iter().map(|p| skip_table(p)).collect();
    let mut acc: u32 = 0;
    for _ in 0..ROUNDS {
        for (i, p) in pats.iter().enumerate() {
            let pos = bmh(&t, p, &skips[i]);
            acc = acc.wrapping_add(pos).wrapping_add(i as u32 + 1);
        }
    }
    acc
}

/// Build the workload.
pub fn build() -> Workload {
    let t = byte_table("text", &text());
    let pats = patterns();
    let mut data = String::new();
    for (i, p) in pats.iter().enumerate() {
        data.push_str(&byte_table(&format!("pat{i}"), p));
        data.push_str(&byte_table(&format!("skip{i}"), &skip_table(p)));
    }

    // One fully specialised search per pattern — MiBench's generated
    // per-string search functions, inlined: every pattern owns its
    // entire code path (skip loop, compare loop, tails), so the round
    // robin cycles ~5 blocks x 8 patterns with no cross-pattern reuse.
    let mut drivers = String::new();
    for i in (0..PATTERNS).rev() {
        let _ = write!(
            drivers,
            r#"
search{i}:
    la   $t0, text
    la   $a0, pat{i}
    la   $a1, skip{i}
    li   $t1, {{TEXT_LEN}}
    li   $t2, {{PAT_LEN}}
    addiu $t3, $t2, -1         # i = m-1
s{i}_outer:
    bgeu $t3, $t1, s{i}_fail
    addiu $t4, $t2, -1         # j
    move $t5, $t3              # k
s{i}_inner:
    bltz $t4, s{i}_found
    addu $t6, $t0, $t5
    lbu  $t6, 0($t6)
    addu $t7, $a0, $t4
    lbu  $t7, 0($t7)
    bne  $t6, $t7, s{i}_shift
    addiu $t5, $t5, -1
    addiu $t4, $t4, -1
    b    s{i}_inner
s{i}_shift:
    addu $t6, $t0, $t3
    lbu  $t6, 0($t6)
    addu $t7, $a1, $t6
    lbu  $t7, 0($t7)
    addu $t3, $t3, $t7
    b    s{i}_outer
s{i}_found:
    addiu $t5, $t5, 2
    addu $s7, $s7, $t5
s{i}_fail:
    addiu $s7, $s7, {bonus}
"#,
            bonus = i + 1
        );
    }
    let drivers = drivers
        .replace("{TEXT_LEN}", &TEXT_LEN.to_string())
        .replace("{PAT_LEN}", &PAT_LEN.to_string());

    let source = format!(
        r#"
# stringsearch: BMH over {PATTERNS} patterns x {ROUNDS} rounds,
# one fully specialised search per pattern (poor temporal locality:
# the round robin touches ~40 distinct blocks with no shared code).
    .data
{t}
{data}

    .text
main:
    li   $s7, 0                # acc
    li   $s6, {ROUNDS}
round_loop:
{drivers}
    addiu $s6, $s6, -1
    bnez $s6, round_loop

    move $a0, $s7
    li   $v0, 10
    syscall
"#
    );
    Workload {
        name: "stringsearch",
        source,
        expected_exit: reference(),
        description: "BMH searches over eight patterns with per-pattern driver code",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimon_pipeline::{Processor, ProcessorConfig, RunOutcome};

    #[test]
    fn bmh_agrees_with_naive_search() {
        let t = text();
        for p in patterns() {
            let skip = skip_table(&p);
            let got = bmh(&t, &p, &skip);
            let naive = t
                .windows(p.len())
                .position(|w| w == &p[..])
                .map(|i| i as u32 + 1)
                .unwrap_or(0);
            assert_eq!(got, naive, "pattern {:?}", String::from_utf8_lossy(&p));
        }
    }

    #[test]
    fn half_the_patterns_match() {
        let t = text();
        let found = patterns()
            .iter()
            .filter(|p| bmh(&t, p, &skip_table(p)) != 0)
            .count();
        assert_eq!(found, PATTERNS / 2);
    }

    #[test]
    fn runs_to_expected_exit() {
        let w = build();
        let prog = w.assemble();
        let mut cpu = Processor::new(&prog.image, ProcessorConfig::baseline());
        assert_eq!(
            cpu.run(),
            RunOutcome::Exited {
                code: w.expected_exit
            }
        );
    }
}
