//! `susan` — image smoothing and corner response (MiBench automotive).
//!
//! SUSAN processes greyscale images with windowed kernels. This kernel
//! runs the same two passes over a 32×32 synthetic image: a 3×3
//! weighted smoothing (kernel 1-2-1 / 2-4-2 / 1-2-1, ÷16) with
//! dedicated edge-handling paths, then a USAN-style corner count
//! (neighbours within an intensity threshold of the centre). Long
//! straight-line inner loops over many pixels give susan the paper's
//! signature: one of the largest executed-block counts in the suite
//! (93 in the paper) yet near-zero monitoring overhead, because the
//! inner loops stay resident in even a small IHT.

use crate::{byte_table, lcg_sequence, Workload};

/// Image width.
pub const W: usize = 32;
/// Image height.
pub const H: usize = 32;
/// USAN intensity threshold.
pub const THRESH: u32 = 27;
/// Seed for the image.
pub const SEED: u32 = 0x5005_a111;

/// The input image, row-major bytes.
pub fn image() -> Vec<u8> {
    lcg_sequence(SEED, W * H)
        .into_iter()
        .map(|x| (x >> 11) as u8)
        .collect()
}

/// Reference smoothing pass: 3×3 weighted average on the interior,
/// edges copied through.
pub fn smooth(img: &[u8]) -> Vec<u8> {
    let mut out = img.to_vec();
    for y in 1..H - 1 {
        for x in 1..W - 1 {
            let at = |dy: isize, dx: isize| {
                img[((y as isize + dy) as usize) * W + (x as isize + dx) as usize] as u32
            };
            let sum = at(-1, -1)
                + 2 * at(-1, 0)
                + at(-1, 1)
                + 2 * at(0, -1)
                + 4 * at(0, 0)
                + 2 * at(0, 1)
                + at(1, -1)
                + 2 * at(1, 0)
                + at(1, 1);
            out[y * W + x] = (sum / 16) as u8;
        }
    }
    out
}

/// Reference corner pass: count interior pixels whose 8-neighbour USAN
/// (neighbours within `THRESH` of the centre) is 3 or fewer.
pub fn corners(img: &[u8]) -> u32 {
    let mut count = 0;
    for y in 1..H - 1 {
        for x in 1..W - 1 {
            let c = img[y * W + x] as i32;
            let mut usan = 0;
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    if dy == 0 && dx == 0 {
                        continue;
                    }
                    let p =
                        img[((y as isize + dy) as usize) * W + (x as isize + dx) as usize] as i32;
                    if (p - c).unsigned_abs() <= THRESH {
                        usan += 1;
                    }
                }
            }
            if usan <= 3 {
                count += 1;
            }
        }
    }
    count
}

/// Rust reference: sum of smoothed pixels plus corner count.
pub fn reference() -> u32 {
    let img = image();
    let sm = smooth(&img);
    let mut acc: u32 = 0;
    for &b in &sm {
        acc = acc.wrapping_add(b as u32);
    }
    acc.wrapping_add(corners(&sm))
}

/// Build the workload.
pub fn build() -> Workload {
    let img = byte_table("image", &image());
    let w = W;
    let wm1 = W - 1;
    let hm1 = H - 1;
    let npix = W * H;
    let threshp1 = THRESH + 1;
    let source = format!(
        r#"
# susan: 3x3 smoothing + USAN corner count on a {w}x{w} image.
    .data
{img}
smoothed:
    .space {npix}

    .text
main:
    # ================= pass 1: smoothing =================
    # Edge rows/columns are copied through by dedicated paths.
    li   $s0, 0                # y
sm_row:
    li   $s1, 0                # x
sm_col:
    # index = y*W + x
    sll  $t0, $s0, 5           # y * 32
    addu $t0, $t0, $s1
    # edge tests choose the code path
    beqz $s0, sm_copy          # top row
    li   $t1, {hm1}
    beq  $s0, $t1, sm_copy     # bottom row
    beqz $s1, sm_copy          # left column
    li   $t1, {wm1}
    beq  $s1, $t1, sm_copy     # right column

    # interior: 3x3 weighted sum, weights 1 2 1 / 2 4 2 / 1 2 1
    la   $t2, image
    addu $t2, $t2, $t0         # &img[y][x]
    lbu  $t3, -33($t2)         # (-1,-1)
    lbu  $t4, -32($t2)         # (-1, 0)
    sll  $t4, $t4, 1
    addu $t3, $t3, $t4
    lbu  $t4, -31($t2)         # (-1, 1)
    addu $t3, $t3, $t4
    lbu  $t4, -1($t2)          # (0, -1)
    sll  $t4, $t4, 1
    addu $t3, $t3, $t4
    lbu  $t4, 0($t2)           # centre
    sll  $t4, $t4, 2
    addu $t3, $t3, $t4
    lbu  $t4, 1($t2)           # (0, 1)
    sll  $t4, $t4, 1
    addu $t3, $t3, $t4
    lbu  $t4, 31($t2)          # (1, -1)
    addu $t3, $t3, $t4
    lbu  $t4, 32($t2)          # (1, 0)
    sll  $t4, $t4, 1
    addu $t3, $t3, $t4
    lbu  $t4, 33($t2)          # (1, 1)
    addu $t3, $t3, $t4
    srl  $t3, $t3, 4           # /16
    la   $t2, smoothed
    addu $t2, $t2, $t0
    sb   $t3, 0($t2)
    b    sm_next
sm_copy:
    la   $t2, image
    addu $t2, $t2, $t0
    lbu  $t3, 0($t2)
    la   $t2, smoothed
    addu $t2, $t2, $t0
    sb   $t3, 0($t2)
sm_next:
    addiu $s1, $s1, 1
    li   $t1, {w}
    blt  $s1, $t1, sm_col
    addiu $s0, $s0, 1
    li   $t1, {w}
    blt  $s0, $t1, sm_row

    # ================= sum of smoothed pixels =================
    li   $s7, 0
    la   $t0, smoothed
    li   $t1, {npix}
sum_loop:
    lbu  $t2, 0($t0)
    addu $s7, $s7, $t2
    addiu $t0, $t0, 1
    addiu $t1, $t1, -1
    bnez $t1, sum_loop

    # ================= pass 2: USAN corner count =================
    # Branch-free neighbour compares (abs via sign-mask, compare via
    # sltiu) keep the whole pixel body one long straight-line block —
    # susan's signature: many instructions per check, tiny working set.
    li   $s5, 0                # corner count
    li   $s6, {threshp1}       # threshold + 1 for sltu
    li   $s0, 1                # y
cn_row:
    li   $s1, 1                # x
cn_col:
    sll  $t0, $s0, 5
    addu $t0, $t0, $s1
    la   $t2, smoothed
    addu $t2, $t2, $t0         # &sm[y][x]
    lbu  $s2, 0($t2)           # centre
    li   $s3, 0                # usan
    lbu  $t3, -33($t2)
    subu $t3, $t3, $s2
    sra  $t4, $t3, 31
    xor  $t3, $t3, $t4
    subu $t3, $t3, $t4
    sltu $t3, $t3, $s6
    addu $s3, $s3, $t3
    lbu  $t3, -32($t2)
    subu $t3, $t3, $s2
    sra  $t4, $t3, 31
    xor  $t3, $t3, $t4
    subu $t3, $t3, $t4
    sltu $t3, $t3, $s6
    addu $s3, $s3, $t3
    lbu  $t3, -31($t2)
    subu $t3, $t3, $s2
    sra  $t4, $t3, 31
    xor  $t3, $t3, $t4
    subu $t3, $t3, $t4
    sltu $t3, $t3, $s6
    addu $s3, $s3, $t3
    lbu  $t3, -1($t2)
    subu $t3, $t3, $s2
    sra  $t4, $t3, 31
    xor  $t3, $t3, $t4
    subu $t3, $t3, $t4
    sltu $t3, $t3, $s6
    addu $s3, $s3, $t3
    lbu  $t3, 1($t2)
    subu $t3, $t3, $s2
    sra  $t4, $t3, 31
    xor  $t3, $t3, $t4
    subu $t3, $t3, $t4
    sltu $t3, $t3, $s6
    addu $s3, $s3, $t3
    lbu  $t3, 31($t2)
    subu $t3, $t3, $s2
    sra  $t4, $t3, 31
    xor  $t3, $t3, $t4
    subu $t3, $t3, $t4
    sltu $t3, $t3, $s6
    addu $s3, $s3, $t3
    lbu  $t3, 32($t2)
    subu $t3, $t3, $s2
    sra  $t4, $t3, 31
    xor  $t3, $t3, $t4
    subu $t3, $t3, $t4
    sltu $t3, $t3, $s6
    addu $s3, $s3, $t3
    lbu  $t3, 33($t2)
    subu $t3, $t3, $s2
    sra  $t4, $t3, 31
    xor  $t3, $t3, $t4
    subu $t3, $t3, $t4
    sltu $t3, $t3, $s6
    addu $s3, $s3, $t3
    li   $t1, 3
    bgt  $s3, $t1, cn_next
    addiu $s5, $s5, 1
cn_next:
    addiu $s1, $s1, 1
    li   $t1, {wm1}
    blt  $s1, $t1, cn_col
    addiu $s0, $s0, 1
    li   $t1, {hm1}
    blt  $s0, $t1, cn_row

    addu $a0, $s7, $s5
    li   $v0, 10
    syscall
"#
    );
    Workload {
        name: "susan",
        source,
        expected_exit: reference(),
        description: "3x3 weighted smoothing plus USAN corner counting with edge paths",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimon_pipeline::{Processor, ProcessorConfig, RunOutcome};

    #[test]
    fn smoothing_preserves_edges_and_bounds() {
        let img = image();
        let sm = smooth(&img);
        // Edges copied.
        for x in 0..W {
            assert_eq!(sm[x], img[x]);
            assert_eq!(sm[(H - 1) * W + x], img[(H - 1) * W + x]);
        }
        // A flat region smooths to itself: all-128 image.
        let flat = vec![128u8; W * H];
        assert_eq!(smooth(&flat), flat);
    }

    #[test]
    fn corners_exist_in_noise() {
        let c = corners(&smooth(&image()));
        assert!(c > 0, "synthetic noise should contain some corners");
        assert!(c < ((W - 2) * (H - 2)) as u32);
    }

    #[test]
    fn runs_to_expected_exit() {
        let w = build();
        let prog = w.assemble();
        let mut cpu = Processor::new(&prog.image, ProcessorConfig::baseline());
        assert_eq!(
            cpu.run(),
            RunOutcome::Exited {
                code: w.expected_exit
            }
        );
    }
}
