//! Attack scenario: a "malicious patch" rewrites instructions of a
//! loaded program — a code-injection attack after the OS's load-time
//! check, exactly the window the paper's run-time monitor exists for.
//!
//! We patch the dijkstra workload three ways — skipping a relaxation
//! guard, redirecting a branch, and splicing in foreign instructions —
//! and show each is killed at the end of its first tampered block.
//!
//! ```sh
//! cargo run --release --example attack_detection
//! ```

use std::sync::Arc;

use cimon::core::CicConfig;
use cimon::prelude::*;

fn run_attack(
    name: &str,
    program: &cimon::asm::Program,
    fht: Arc<cimon::os::FullHashTable>,
    patch: impl FnOnce(&mut Processor),
) {
    let mut cpu = Processor::new(
        &program.image,
        ProcessorConfig::monitored(CicConfig::with_entries(16), fht),
    );
    patch(&mut cpu);
    match cpu.run() {
        RunOutcome::Detected { cause, pc } => {
            println!("{name:<28} DETECTED at {pc:#010x}: {cause:?}");
        }
        RunOutcome::Fault(f) => {
            println!("{name:<28} caught by baseline fault logic: {f:?}");
        }
        other => println!("{name:<28} NOT caught: {other:?}"),
    }
}

fn main() {
    // The registry assembles each workload once; the engine artifact
    // caches the FHT so the clean run and all three attacks share it.
    let workload = cimon::workloads::get("dijkstra").expect("dijkstra exists");
    let program = &*workload.program;
    let artifact = cimon::artifact_for(workload);
    let fht = artifact
        .fht(HashAlgoKind::Xor, 0)
        .expect("static analysis succeeds");

    // Sanity: untampered run is clean and correct.
    let clean = run_monitored(&program.image, &SimConfig::default(), Some(fht.clone())).unwrap();
    println!(
        "clean run: {:?}, {} checks, 0 mismatches expected, got {}\n",
        clean.outcome,
        clean.stats.cic.unwrap().checks,
        clean.stats.cic.unwrap().mismatches
    );

    // Attack 1: neutralise the relaxation guard — turn the `bgeu` that
    // protects `dist[v]` updates into a nop, so every candidate wins.
    let relax_guard = program
        .listing
        .iter()
        .find(|(_, i, _)| {
            // The expanded bgeu pseudo ends in a beq on $at.
            i.to_string().starts_with("beq $at")
        })
        .map(|&(addr, _, _)| addr)
        .expect("guard branch exists");
    run_attack("nop out a guard branch", program, fht.clone(), |cpu| {
        cpu.mem_mut().write_u32(relax_guard, 0).unwrap(); // sll $0,$0,0
    });

    // Attack 2: redirect a branch displacement (jump somewhere else).
    run_attack("bend a branch offset", program, fht.clone(), |cpu| {
        let word = cpu.mem().read_u32(relax_guard).unwrap();
        cpu.mem_mut().write_u32(relax_guard, word ^ 0x1).unwrap();
    });

    // Attack 3: splice a foreign instruction over the result summation —
    // `lw $t2, 0($t1)` becomes `li $t2, 7`, silently forging the result.
    // Perfectly valid code, no fault, no crash: only the hash knows.
    let inject_at = program.symbols.get("sum_loop").expect("label exists");
    run_attack("splice injected code", program, fht, |cpu| {
        let li = cimon::isa::Instr::I(cimon::isa::IType {
            opcode: cimon::isa::IOpcode::Addiu,
            rs: cimon::isa::Reg::ZERO,
            rt: cimon::isa::Reg::T2,
            imm: 7,
        });
        cpu.mem_mut().write_u32(inject_at, li.encode()).unwrap();
    });

    println!(
        "\nAll three modifications execute *valid* instructions — no illegal \
         opcodes for the baseline machine to trip on — yet none survives its \
         first basic-block check."
    );
}
