//! Design-space walk-through: the paper's Section 5 methodology as an
//! API. Start from the baseline ASIP spec, embed the monitor, print the
//! augmented micro-operation programs (compare the paper's Figures 1,
//! 3(b) and 4), and sweep the IHT size × hash algorithm plane with the
//! area model to see the cost of each design point.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use cimon::area::{AreaModel, PAPER_BASELINE_PERIOD_NS};
use cimon::microop::{baseline_spec, embed_monitor, HashAlgoKind, MonitorParams};
use cimon::sim::engine::Sweep;
use cimon::sim::SimConfig;

fn main() {
    // ---- the design step ----
    let base = baseline_spec();
    println!("=== baseline IF micro-program (paper Fig. 1) ===");
    print!("{}", base.if_program);

    let spec = embed_monitor(&base, &MonitorParams::default());
    spec.validate().expect("generated spec validates");
    println!("\n=== monitored IF micro-program (paper Fig. 3b) ===");
    print!("{}", spec.if_program);
    println!("\n=== monitored ID check program (paper Fig. 4) ===");
    print!("{}", spec.id_check_program.as_ref().unwrap());

    println!("\nmonitoring resources selected by the design step:");
    for r in spec.monitoring_resources() {
        println!("  - {r:?}");
    }

    // ---- the cost plane ----
    let model = AreaModel::calibrated();
    println!("\n=== area overhead (%) across the design plane ===");
    print!("{:>10}", "entries");
    for algo in HashAlgoKind::ALL {
        print!("{:>12}", algo.name());
    }
    println!();
    for entries in [1usize, 4, 8, 16, 32] {
        print!("{entries:>10}");
        for algo in HashAlgoKind::ALL {
            print!("{:>12.1}", model.area_row(entries, algo).overhead_percent);
        }
        println!();
    }

    println!("\n=== minimum cycle time (ns, baseline {PAPER_BASELINE_PERIOD_NS}) ===");
    print!("{:>10}", "entries");
    for algo in HashAlgoKind::ALL {
        print!("{:>12}", algo.name());
    }
    println!();
    for entries in [1usize, 8, 16, 32] {
        print!("{entries:>10}");
        for algo in HashAlgoKind::ALL {
            print!("{:>12.2}", model.timing_row(entries, algo).period_ns);
        }
        println!();
    }
    println!(
        "\nXOR / seeded-XOR / CRC hash units hide inside the IF stage (the EX \
         ALU carry chain still sets the clock); a SHA-1 HASHFU would stretch \
         the cycle — the quantified version of the paper's Section 3.4 argument \
         against cryptographic hashes in the fetch path."
    );

    // ---- the performance plane, through the experiment engine ----
    // One sweep call runs every design point in parallel on a real
    // workload; the artifact caches the bitcount image and one FHT per
    // hash algorithm.
    let w = cimon::workloads::get("bitcount").expect("bitcount exists");
    let artifact = cimon::artifact_for(w);
    let sizes = [1usize, 8, 16, 32];
    let algos = [
        HashAlgoKind::Xor,
        HashAlgoKind::SeededXor,
        HashAlgoKind::Crc32,
    ];
    let mut sweep = Sweep::new();
    sweep.grid(
        std::slice::from_ref(&artifact),
        &sizes,
        &algos,
        SimConfig::default(),
    );
    let rows = sweep.run().expect("bitcount analyses");
    println!("\n=== cycle cost on `bitcount` across the design plane (one sweep) ===");
    print!("{:>10}", "entries");
    for algo in algos {
        print!("{:>12}", algo.name());
    }
    println!();
    for (i, &entries) in sizes.iter().enumerate() {
        print!("{entries:>10}");
        for (j, _) in algos.iter().enumerate() {
            // grid order is algo-major, size-minor within the artifact.
            print!("{:>12}", rows[j * sizes.len() + i].cycles);
        }
        println!();
    }

    // The same plane timed point by point: simulated MIPS (simulator
    // wall-clock, artifacts prepared outside the timed region —
    // mirrors the `sim_throughput` bench), so the examples double as a
    // smoke throughput check.
    println!("\n=== simulated MIPS across the design plane (smoke throughput check) ===");
    print!("{:>10}", "entries");
    for algo in algos {
        print!("{:>12}", algo.name());
    }
    println!();
    let predecoded = artifact.predecoded();
    let blocks = artifact.block_cache();
    for &entries in &sizes {
        print!("{entries:>10}");
        for algo in algos {
            let config = SimConfig {
                iht_entries: entries,
                hash_algo: algo,
                ..SimConfig::default()
            };
            let fht = artifact.fht(algo, config.hash_seed).expect("analyses");
            let t0 = std::time::Instant::now();
            let report = cimon::sim::run_monitored_prepared(
                artifact.image(),
                fht,
                &config,
                predecoded.clone(),
                blocks.clone(),
            );
            let mips = report.stats.instructions as f64 / t0.elapsed().as_secs_f64() / 1e6;
            print!("{mips:>12.1}");
        }
        println!();
    }
    println!(
        "\nThe engine ran {} design points in parallel off one assembled image \
         and {} cached hash tables.",
        rows.len(),
        algos.len()
    );
}
