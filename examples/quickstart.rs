//! Quickstart: assemble a small program, run it on the baseline and the
//! monitored processor, and print what the monitor saw.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cimon::prelude::*;

fn main() {
    // A little program: sum 1..=100, store it, exit with the sum.
    let source = "
        .data
    result: .space 4
        .text
    main:
        li   $t0, 100
        li   $t1, 0
    loop:
        addu $t1, $t1, $t0
        addiu $t0, $t0, -1
        bnez $t0, loop
        la   $t2, result
        sw   $t1, 0($t2)
        move $a0, $t1
        li   $v0, 10
        syscall
    ";
    let program = cimon::asm::assemble(source).expect("assembles");
    println!("== program ==\n{}", program.disassembly());

    // Baseline run: no monitoring hardware.
    let base = run_baseline(&program.image);
    println!(
        "baseline : {:?} in {} cycles ({} instructions)",
        base.outcome, base.stats.cycles, base.stats.instructions
    );

    // Monitored run: the paper's CIC8 configuration. The facade
    // statically generates the Full Hash Table first, exactly like the
    // paper's post-link "special program".
    let config = SimConfig::default();
    let report = run_monitored(&program.image, &config, None).expect("hash generation");
    println!(
        "monitored: {:?} in {} cycles (+{:.1}% overhead)",
        report.outcome,
        report.stats.cycles,
        overhead_percent(base.stats.cycles, report.stats.cycles)
    );
    let cic = report.stats.cic.expect("monitored run has checker stats");
    println!(
        "checker  : {} block checks, {} hits, {} misses ({:.1}% miss rate), {} mismatches",
        cic.checks, cic.hits, cic.misses, report.miss_rate_percent, cic.mismatches
    );
    println!(
        "fht      : {} expected-hash entries attached to the image",
        report.fht_entries
    );

    // And the punchline: flip one bit of the loop body in memory and the
    // monitor kills the program at the end of the affected block.
    let mut cpu = Processor::new(
        &program.image,
        ProcessorConfig::monitored(
            CicConfig::default(),
            build_fht(&program.image, &config).unwrap(),
        ),
    );
    let victim = program.symbols.get("loop").unwrap();
    let word = cpu.mem().read_u32(victim).unwrap();
    cpu.mem_mut().write_u32(victim, word ^ (1 << 17)).unwrap();
    println!("tampered : flipped bit 17 of the instruction at {victim:#010x}");
    match cpu.run() {
        RunOutcome::Detected { cause, pc } => {
            println!("detected : {cause:?} at pc {pc:#010x}");
        }
        other => println!("UNEXPECTED: {other:?}"),
    }
}
