//! Soft-error campaign: inject random transient bit flips into a real
//! workload — in stored code and on the fetch bus — and tabulate what
//! the monitor catches, per hash algorithm.
//!
//! This is the paper's Section 6.3 fault analysis, live:
//! the XOR checksum catches every odd-weight error, misses only
//! column-cancelling pairs, and stronger hash hardware closes that gap.
//!
//! ```sh
//! cargo run --release --example soft_error_campaign
//! ```

use std::time::Duration;

use cimon::core::CicConfig;
use cimon::faults::{Campaign, CampaignConfig, FaultModel, FaultSite};
use cimon::prelude::*;

fn main() {
    // Assembled once by the registry; FHTs cached per algorithm by the
    // engine artifact. The campaigns themselves fan out over the
    // engine's worker pool.
    let workload = cimon::workloads::get("sha").expect("sha exists");
    let artifact = cimon::artifact_for(workload);
    println!("workload: {} — {}", workload.name, workload.description);

    // Fault targets: the text segment.
    let (lo, hi) = workload.image.text_range();
    let targets: Vec<u32> = (lo..hi).step_by(4).collect();

    println!(
        "\n{:<12} {:<18} {:>9} {:>9} {:>8} {:>8} {:>6} {:>6} {:>10}  coverage",
        "hash", "model", "monitor", "baseline", "masked", "silent", "hung", "quar", "saved-cyc"
    );
    for algo in [
        HashAlgoKind::Xor,
        HashAlgoKind::SeededXor,
        HashAlgoKind::Crc32,
    ] {
        let fht = artifact.fht(algo, 0xfeed).expect("static fht");
        let cic = CicConfig {
            iht_entries: 16,
            hash_algo: algo,
            hash_seed: 0xfeed,
        };
        let campaign = Campaign::new(workload.image.clone(), cic, fht);

        for (name, model, site) in [
            (
                "single-bit/mem",
                FaultModel::SingleBit,
                FaultSite::StoredImage,
            ),
            (
                "single-bit/bus",
                FaultModel::SingleBit,
                FaultSite::FetchBus(cimon::faults::BusFaultMode::OneShot),
            ),
            (
                "3-bit/mem",
                FaultModel::MultiBit { n: 3 },
                FaultSite::StoredImage,
            ),
            (
                "column-pair/mem",
                FaultModel::SameColumnPair,
                FaultSite::StoredImage,
            ),
        ] {
            // The wall-clock watchdog bounds every faulted run: a plan
            // that stalls the simulator is retried once from its
            // checkpoint, then quarantined instead of hanging the demo.
            let result = campaign
                .run(&CampaignConfig {
                    runs: 150,
                    seed: 0xdecaf,
                    model,
                    site,
                    targets: targets.clone(),
                    max_cycles: 3_000_000,
                    max_wall: Some(Duration::from_secs(30)),
                })
                .expect("campaign config is valid");
            println!(
                "{:<12} {:<18} {:>9} {:>9} {:>8} {:>8} {:>6} {:>6} {:>10}  {:>6.1}%",
                algo.name(),
                name,
                result.detected_monitor,
                result.detected_baseline,
                result.masked,
                result.silent,
                result.hung,
                result.quarantined,
                result.saved_cycles,
                result.coverage_percent()
            );
        }
    }
    println!(
        "\nReading the table: `silent` is the undetected-corruption count — zero \
         for every single-bit model (the paper's XOR guarantee), non-zero for \
         XOR only under adversarial same-column pairs, and zero again once the \
         HASHFU is upgraded. `quar` counts runs the wall-clock watchdog gave up \
         on after a checkpoint retry, and `saved-cyc` is the cycles the \
         detection checkpoints skipped re-simulating across retries."
    );
}
