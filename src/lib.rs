//! # cimon — microarchitectural program code integrity monitoring
//!
//! A full-system reproduction of *"Microarchitectural Support for
//! Program Code Integrity Monitoring in Application-specific Instruction
//! Set Processors"* (Fei & Shi, DATE 2007): a PISA-like embedded
//! processor whose pipeline is augmented — through ISA-level
//! micro-operations — with a Code Integrity Checker that hashes each
//! dynamic basic block at fetch time and validates it against an
//! on-chip hash table at the block's terminating control-flow
//! instruction.
//!
//! This crate re-exports the whole workspace; see the individual crates
//! for deep documentation:
//!
//! * [`isa`] — the instruction set (formats, encode/decode, semantics)
//! * [`asm`] — the two-pass assembler
//! * [`mem`] — sparse memory, program images, the tappable fetch bus
//! * [`microop`] — micro-operations and the ASIP design methodology
//! * [`pipeline`] — the 6-stage processor with the pluggable
//!   [`Monitor`](pipeline::Monitor) plane
//! * [`core`] — the Code Integrity Checker (hash units, IHT, comparator)
//! * [`os`] — FHT, refill policies, exception handling
//! * [`hashgen`] — static/trace expected-hash generation
//! * [`faults`] — bit-flip injection and coverage campaigns
//! * [`area`] — calibrated area/cycle-time model (Table 2)
//! * [`workloads`] — the nine MiBench-like benchmarks, assembled once
//!   through [`workloads::registry`]
//! * [`sim`] — the one-call simulation facade and the parallel
//!   experiment engine ([`sim::engine`])
//! * [`serve`] — the crash-safe, back-pressured simulation service
//!   (durable result journaling, graceful drain; `docs/serve.md`)
//!
//! ## Quickstart
//!
//! ```
//! use cimon::prelude::*;
//!
//! let program = cimon::asm::assemble("
//!     .text
//! main:
//!     li   $t0, 3
//! spin:
//!     addiu $t0, $t0, -1
//!     bnez $t0, spin
//!     li   $a0, 0
//!     li   $v0, 10
//!     syscall
//! ").unwrap();
//!
//! let report = run_monitored(&program.image, &SimConfig::default(), None).unwrap();
//! assert!(matches!(report.outcome, RunOutcome::Exited { code: 0 }));
//! ```

pub use cimon_area as area;
pub use cimon_asm as asm;
pub use cimon_core as core;
pub use cimon_faults as faults;
pub use cimon_hashgen as hashgen;
pub use cimon_isa as isa;
pub use cimon_mem as mem;
pub use cimon_microop as microop;
pub use cimon_os as os;
pub use cimon_pipeline as pipeline;
pub use cimon_serve as serve;
pub use cimon_sim as sim;
pub use cimon_workloads as workloads;

/// An experiment-engine [`Artifact`](sim::engine::Artifact) for a
/// registry workload — the single-sourced conversion used by examples
/// and tests (`cimon-bench` keeps its own cached `suite()` of these).
pub fn artifact_for(
    workload: &workloads::AssembledWorkload,
) -> std::sync::Arc<sim::engine::Artifact> {
    sim::engine::Artifact::new(
        workload.name,
        workload.image.clone(),
        Some(workload.expected_exit),
    )
}

/// The names most programs need.
pub mod prelude {
    pub use cimon_core::{CicConfig, HashAlgoKind};
    pub use cimon_pipeline::{Monitor, Predecode, Processor, ProcessorConfig, RunOutcome};
    pub use cimon_sim::engine::{Artifact, Experiment, ResultRow, Sweep};
    pub use cimon_sim::{
        build_fht, overhead_percent, run_baseline, run_baseline_prepared, run_monitored,
        run_monitored_prepared, run_monitored_with_fht, RunReport, SimConfig,
    };
}
