//! The monitor plane contract: a pipeline behaves architecturally
//! identically under any [`Monitor`] implementation — the CIC, a null
//! monitor, or a custom one — across the full workload suite.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cimon::core::{BlockKey, CicConfig};
use cimon::microop::{ExceptionKind, MonitorParams};
use cimon::pipeline::{CicMonitor, Monitor, MonitorConfig, NullMonitor, Verdict};
use cimon::prelude::*;

#[test]
fn null_monitor_is_architecturally_identical_to_baseline() {
    for w in cimon::workloads::registry() {
        let mut base = Processor::new(&w.image, ProcessorConfig::baseline());
        let base_out = base.run();
        let mut null =
            Processor::with_monitor(&w.image, ProcessorConfig::baseline(), Box::new(NullMonitor));
        let null_out = null.run();
        assert_eq!(base_out, null_out, "{}", w.name);
        assert_eq!(base.regs().snapshot(), null.regs().snapshot(), "{}", w.name);
        assert_eq!(base.cycles(), null.cycles(), "{}", w.name);
        assert_eq!(
            base.stats().instructions,
            null.stats().instructions,
            "{}",
            w.name
        );
        assert!(null.cic().is_none() && null.os().is_none());
    }
}

#[test]
fn cic_monitor_preserves_architectural_state_on_all_workloads() {
    for w in cimon::workloads::registry() {
        let artifact = cimon::artifact_for(w);
        let fht = artifact
            .fht(HashAlgoKind::Xor, 0)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));

        let mut base = Processor::new(&w.image, ProcessorConfig::baseline());
        let base_out = base.run();
        let monitor = CicMonitor::new(MonitorConfig::new(CicConfig::with_entries(16), fht));
        let mut mon =
            Processor::with_monitor(&w.image, ProcessorConfig::baseline(), Box::new(monitor));
        let mon_out = mon.run();

        assert_eq!(
            base_out,
            RunOutcome::Exited {
                code: w.expected_exit
            },
            "{}",
            w.name
        );
        assert_eq!(base_out, mon_out, "{}", w.name);
        assert_eq!(base.regs().snapshot(), mon.regs().snapshot(), "{}", w.name);
        assert_eq!(base.stats().console, mon.stats().console, "{}", w.name);
        let stats = mon.stats();
        let cic = stats.cic.expect("CIC monitor reports checker stats");
        assert_eq!(cic.mismatches, 0, "false positive in {}", w.name);
        assert!(mon.cycles() >= base.cycles(), "{}", w.name);
    }
}

/// A custom monitor: accepts every block, raises nothing, and counts
/// the fetch-observe / check events through shared counters. The
/// pipeline needs no changes to run it — the Monitor trait is the whole
/// integration surface.
struct CountingMonitor {
    fetches: Arc<AtomicU64>,
    checks: Arc<AtomicU64>,
}

impl Monitor for CountingMonitor {
    fn params(&self) -> Option<MonitorParams> {
        Some(MonitorParams::default())
    }

    fn observe_fetch(&mut self, _word: u32) -> u32 {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        0
    }

    fn hash_reset(&mut self) {}

    fn check_block(&mut self, _key: BlockKey, _hash: u32) -> (bool, bool) {
        self.checks.fetch_add(1, Ordering::Relaxed);
        (true, true)
    }

    fn resolve(&mut self, _kind: ExceptionKind, _key: BlockKey, _hash: u32) -> Verdict {
        Verdict::Continue { stall_cycles: 0 }
    }
}

#[test]
fn custom_monitor_plugs_in_without_pipeline_changes() {
    let w = cimon::workloads::get("bitcount").expect("bitcount exists");
    let fetches = Arc::new(AtomicU64::new(0));
    let checks = Arc::new(AtomicU64::new(0));
    let monitor = CountingMonitor {
        fetches: fetches.clone(),
        checks: checks.clone(),
    };
    let mut cpu = Processor::with_monitor(&w.image, ProcessorConfig::baseline(), Box::new(monitor));
    let out = cpu.run();
    assert_eq!(
        out,
        RunOutcome::Exited {
            code: w.expected_exit
        }
    );
    // The monitoring micro-ops drove the hooks: every committed
    // instruction was observed, every control-flow block was checked.
    assert_eq!(fetches.load(Ordering::Relaxed), cpu.stats().instructions);
    assert!(checks.load(Ordering::Relaxed) > 0);
    // An accept-all monitor stalls nothing.
    assert_eq!(cpu.stats().monitor_stall_cycles, 0);
}

#[test]
fn monitored_runs_differ_from_baseline_only_in_stall_cycles() {
    // The trait hooks sit on the hot path; this pins down that the
    // *timing* difference between baseline and monitored runs is
    // exactly the resolve() stalls, for every workload.
    for w in cimon::workloads::registry() {
        let base = run_baseline(&w.image);
        let mon = run_monitored(&w.image, &SimConfig::default(), None)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let delta = mon.stats.cycles - base.stats.cycles;
        assert!(delta <= mon.stats.monitor_stall_cycles, "{}", w.name);
    }
}
