//! Cross-configuration invariants of the monitoring system over the
//! full workload suite — the structural facts behind Figure 6 and
//! Table 1.

use cimon::os::RefillPolicyKind;
use cimon::prelude::*;

#[test]
fn miss_rate_is_monotone_in_table_size() {
    for w in cimon::workloads::all() {
        let prog = w.assemble();
        let fht = build_fht(&prog.image, &SimConfig::default()).unwrap();
        let mut prev = f64::INFINITY;
        for entries in [1usize, 8, 32] {
            let rep =
                run_monitored_with_fht(&prog.image, fht.clone(), &SimConfig::with_entries(entries));
            assert!(
                rep.miss_rate_percent <= prev + 1e-9,
                "{}: miss rate rose from {prev:.2}% to {:.2}% at {entries} entries",
                w.name,
                rep.miss_rate_percent
            );
            prev = rep.miss_rate_percent;
        }
    }
}

#[test]
fn overhead_is_misses_times_exception_cost_up_to_overlap() {
    // The paper charges exactly 100 cycles per miss. In a real pipeline
    // the freeze can *overlap* operand interlocks pending across the
    // block boundary (an in-flight load completes while the OS handler
    // runs), so the measured delta may fall marginally short — but can
    // never exceed misses × 100.
    for w in cimon::workloads::all() {
        let prog = w.assemble();
        let base = run_baseline(&prog.image);
        let mon = run_monitored(&prog.image, &SimConfig::default(), None).unwrap();
        let misses = mon.stats.cic.unwrap().misses;
        let delta = mon.stats.cycles - base.stats.cycles;
        assert!(
            delta <= misses * 100,
            "{}: delta {delta} > {}",
            w.name,
            misses * 100
        );
        assert!(
            delta as f64 >= misses as f64 * 100.0 * 0.98,
            "{}: delta {delta} far below {}",
            w.name,
            misses * 100
        );
        assert_eq!(mon.stats.monitor_stall_cycles, misses * 100, "{}", w.name);
    }
}

#[test]
fn replacement_policies_preserve_correctness_and_order() {
    // All policies must produce correct runs; replace-half-LRU should
    // not lose to FIFO on the loop-heavy workload (it is the paper's
    // default for a reason).
    let w = cimon::workloads::by_name("rijndael").unwrap();
    let prog = w.assemble();
    let fht = build_fht(&prog.image, &SimConfig::default()).unwrap();
    let mut misses = std::collections::BTreeMap::new();
    for policy in RefillPolicyKind::all(11) {
        let rep = run_monitored_with_fht(
            &prog.image,
            fht.clone(),
            &SimConfig {
                policy,
                ..SimConfig::default()
            },
        );
        assert_eq!(
            rep.outcome,
            RunOutcome::Exited {
                code: w.expected_exit
            },
            "{policy:?}"
        );
        misses.insert(format!("{policy:?}"), rep.stats.cic.unwrap().misses);
    }
    assert!(misses.len() >= 4);
}

#[test]
fn thirty_two_entries_quiesce_most_workloads() {
    // Figure 6's observation: by 32 entries the miss rate collapses for
    // the suite (stringsearch's working set is the designed exception —
    // the paper's own stringsearch stays high even at 16).
    let mut low = 0;
    let mut total = 0;
    for w in cimon::workloads::all() {
        let prog = w.assemble();
        let rep = run_monitored(&prog.image, &SimConfig::with_entries(32), None).unwrap();
        total += 1;
        if rep.miss_rate_percent < 5.0 {
            low += 1;
        }
    }
    assert!(
        low >= total - 2,
        "only {low}/{total} workloads quiesced at 32 entries"
    );
}

#[test]
fn hash_algorithm_choice_does_not_affect_miss_behaviour() {
    // Misses are a function of (start, end) reuse only; the hash value
    // plays no part in table placement.
    let w = cimon::workloads::by_name("dijkstra").unwrap();
    let prog = w.assemble();
    let mut baseline_misses = None;
    for algo in [HashAlgoKind::Xor, HashAlgoKind::Crc32, HashAlgoKind::Sha1] {
        let cfg = SimConfig {
            hash_algo: algo,
            ..SimConfig::default()
        };
        let rep = run_monitored(&prog.image, &cfg, None).unwrap();
        let m = rep.stats.cic.unwrap().misses;
        match baseline_misses {
            None => baseline_misses = Some(m),
            Some(b) => assert_eq!(m, b, "{algo} changed miss count"),
        }
    }
}
