//! Soundness of the static hash generator: every dynamic basic block a
//! workload actually executes must be present — with the same hash — in
//! the statically generated Full Hash Table. This is the property that
//! lets the OS-managed scheme run legacy binaries without false kills.

use cimon::core::HashAlgoKind;
use cimon::hashgen::{static_fht, trace_fht};
use cimon::pipeline::RunOutcome;

#[test]
fn static_fht_covers_every_traced_block_for_all_workloads() {
    for w in cimon::workloads::all() {
        let prog = w.assemble();
        let (s, report) =
            static_fht(&prog.image, &[], HashAlgoKind::Xor, 0).expect("static analysis");
        let (t, outcome, executions) = trace_fht(&prog.image, HashAlgoKind::Xor, 0, 400_000_000);
        assert_eq!(
            outcome,
            RunOutcome::Exited {
                code: w.expected_exit
            },
            "trace run of {}",
            w.name
        );
        assert!(executions > 0);
        for rec in t.iter() {
            match s.lookup(rec.key) {
                None => panic!(
                    "{}: traced block {} missing from static FHT",
                    w.name, rec.key
                ),
                Some(h) => assert_eq!(
                    h, rec.hash,
                    "{}: hash disagreement on block {}",
                    w.name, rec.key
                ),
            }
        }
        // The static table over-approximates (it may contain blocks a
        // particular input never reaches) but must never be smaller.
        assert!(
            s.len() >= t.len(),
            "{}: static {} < traced {}",
            w.name,
            s.len(),
            t.len()
        );
        assert!(
            report.unterminated.is_empty(),
            "{}: unterminated entries",
            w.name
        );
    }
}

#[test]
fn static_and_trace_agree_for_every_hash_algorithm() {
    // One representative workload across all algorithms (hash identity
    // must hold regardless of the function).
    let w = cimon::workloads::by_name("patricia").unwrap();
    let prog = w.assemble();
    for algo in HashAlgoKind::ALL {
        let (s, _) = static_fht(&prog.image, &[], algo, 0x5eed).expect("static");
        let (t, _, _) = trace_fht(&prog.image, algo, 0x5eed, 400_000_000);
        for rec in t.iter() {
            assert_eq!(
                s.lookup(rec.key),
                Some(rec.hash),
                "{algo}: block {}",
                rec.key
            );
        }
    }
}

#[test]
fn fht_section_roundtrip_preserves_monitoring() {
    use cimon::hashgen::{from_section_bytes, to_section_bytes};
    use cimon::prelude::*;

    let w = cimon::workloads::by_name("bitcount").unwrap();
    let prog = w.assemble();
    let fht = build_fht(&prog.image, &SimConfig::default()).unwrap();

    // Serialise the table as the loader-attachable section and parse it
    // back — the parsed table must drive a clean monitored run.
    let bytes = to_section_bytes(&fht, HashAlgoKind::Xor);
    let (parsed, algo) = from_section_bytes(&bytes).expect("well-formed section");
    assert_eq!(algo, HashAlgoKind::Xor);
    assert_eq!(parsed, fht);

    let report = run_monitored_with_fht(&prog.image, parsed, &SimConfig::default());
    assert_eq!(
        report.outcome,
        RunOutcome::Exited {
            code: w.expected_exit
        }
    );
    assert_eq!(report.stats.cic.unwrap().mismatches, 0);
}
