//! Detection guarantees under tampering, across the real workloads:
//! single-bit flips in *executed* code are never silent under the XOR
//! checksum (the paper's core guarantee), and detection happens at the
//! end of the affected basic block.

use cimon::core::{BlockKey, CicConfig};
use cimon::faults::{Campaign, CampaignConfig, FaultModel, FaultSite};
use cimon::hashgen::{static_fht, trace_fht};
use cimon::prelude::*;

/// Word addresses actually executed by the workload (from the traced
/// block set) — the region the paper says the monitor protects.
fn executed_addresses(image: &cimon::mem::ProgramImage) -> Vec<u32> {
    let (t, _, _) = trace_fht(image, HashAlgoKind::Xor, 0, 400_000_000);
    let mut addrs: Vec<u32> = t.iter().flat_map(|r| r.key.addresses()).collect();
    addrs.sort_unstable();
    addrs.dedup();
    addrs
}

#[test]
fn single_bit_flips_in_executed_code_are_never_silent() {
    // Three representative workloads spanning the locality spectrum.
    for name in ["bitcount", "sha", "stringsearch"] {
        let w = cimon::workloads::by_name(name).unwrap();
        let prog = w.assemble();
        let (fht, _) = static_fht(&prog.image, &[], HashAlgoKind::Xor, 0).unwrap();
        let targets = executed_addresses(&prog.image);
        let campaign = Campaign::new(prog.image.clone(), CicConfig::with_entries(16), fht);
        let result = campaign
            .run(&CampaignConfig {
                runs: 24,
                seed: 0xabcd,
                model: FaultModel::SingleBit,
                site: FaultSite::StoredImage,
                targets,
                max_cycles: 2_500_000,
                max_wall: None,
            })
            .unwrap();
        assert_eq!(result.silent, 0, "{name}: {result:?}");
        assert!(
            result.detected_monitor + result.detected_baseline > 0,
            "{name}: nothing detected at all"
        );
    }
}

#[test]
fn detection_is_at_the_affected_block_end() {
    // Flip a bit in the first instruction of a known block of dijkstra's
    // init loop and verify the detection PC is that block's end address.
    let w = cimon::workloads::by_name("dijkstra").unwrap();
    let prog = w.assemble();
    let fht = build_fht(&prog.image, &SimConfig::default()).unwrap();

    // Pick the dynamic block starting at the `init` label.
    let init = prog.symbols.get("init").unwrap();
    let block = fht
        .iter()
        .find(|r| r.key.start == init)
        .expect("init block in FHT")
        .key;

    let mut cpu = Processor::new(
        &prog.image,
        ProcessorConfig::monitored(CicConfig::with_entries(8), fht.clone()),
    );
    let word = cpu.mem().read_u32(init).unwrap();
    cpu.mem_mut().write_u32(init, word ^ (1 << 16)).unwrap();
    match cpu.run() {
        RunOutcome::Detected { cause, pc } => {
            // The first dynamic block containing the corrupted word may
            // start earlier (fall-through from `main`), but it must end
            // at the same control-flow instruction — detection happens
            // there, before the next block begins.
            assert_eq!(pc, block.end, "detected at wrong place");
            match cause {
                cimon::os::TerminationCause::HashMismatch { block: b, .. } => {
                    assert_eq!(b.end, block.end);
                    assert!(b.start <= init, "block {b} does not cover the flip");
                    let _ = BlockKey::new(b.start, b.end); // well-formed
                }
                other => panic!("unexpected cause {other:?}"),
            }
        }
        other => panic!("not detected: {other:?}"),
    }
}

#[test]
fn seeded_xor_differs_per_process_but_stays_correct() {
    let w = cimon::workloads::by_name("basicmath").unwrap();
    let prog = w.assemble();
    for seed in [1u32, 0xdead_beef] {
        let cfg = SimConfig {
            hash_algo: HashAlgoKind::SeededXor,
            hash_seed: seed,
            ..SimConfig::default()
        };
        let report = run_monitored(&prog.image, &cfg, None).unwrap();
        assert_eq!(
            report.outcome,
            RunOutcome::Exited {
                code: w.expected_exit
            },
            "seed {seed:#x}"
        );
        assert_eq!(report.stats.cic.unwrap().mismatches, 0);
    }
}

#[test]
fn truncated_fht_kills_program_on_unknown_block() {
    // Remove one block the program provably executes: the run must end
    // with UnknownBlock, not run to completion.
    let w = cimon::workloads::by_name("bitcount").unwrap();
    let prog = w.assemble();
    let full = build_fht(&prog.image, &SimConfig::default()).unwrap();
    let (traced, _, _) = trace_fht(&prog.image, HashAlgoKind::Xor, 0, 400_000_000);
    let victim = traced.iter().next().unwrap().key;
    let partial: cimon::os::FullHashTable = full.iter().filter(|r| r.key != victim).collect();
    let report = run_monitored_with_fht(&prog.image, partial, &SimConfig::default());
    match report.outcome {
        RunOutcome::Detected { cause, .. } => {
            assert!(matches!(
                cause,
                cimon::os::TerminationCause::UnknownBlock { .. }
            ));
        }
        other => panic!("expected unknown-block kill, got {other:?}"),
    }
}
