//! End-to-end correctness of the whole stack: every workload runs to
//! its reference result on both the baseline and the monitored
//! processor, with **zero false positives** from the monitor.

use cimon::prelude::*;

#[test]
fn all_workloads_run_correct_on_baseline() {
    for w in cimon::workloads::all() {
        let prog = w.assemble();
        let report = run_baseline(&prog.image);
        assert_eq!(
            report.outcome,
            RunOutcome::Exited {
                code: w.expected_exit
            },
            "workload {}",
            w.name
        );
        assert!(
            report.stats.instructions > 10_000,
            "workload {} too small",
            w.name
        );
    }
}

#[test]
fn all_workloads_run_correct_monitored_cic8() {
    for w in cimon::workloads::all() {
        let prog = w.assemble();
        let report = run_monitored(&prog.image, &SimConfig::default(), None)
            .unwrap_or_else(|e| panic!("fht for {}: {e}", w.name));
        assert_eq!(
            report.outcome,
            RunOutcome::Exited {
                code: w.expected_exit
            },
            "workload {}",
            w.name
        );
        let cic = report.stats.cic.expect("monitored");
        assert_eq!(cic.mismatches, 0, "false positive in {}", w.name);
        assert!(cic.checks > 0, "{} never checked a block", w.name);
        // Every fetched instruction was hashed.
        assert_eq!(cic.words_hashed, report.stats.instructions, "{}", w.name);
    }
}

#[test]
fn monitoring_never_changes_architectural_results() {
    for w in cimon::workloads::all() {
        let prog = w.assemble();
        let base = run_baseline(&prog.image);
        let mon = run_monitored(&prog.image, &SimConfig::with_entries(16), None).unwrap();
        assert_eq!(base.outcome, mon.outcome, "{}", w.name);
        assert_eq!(
            base.stats.instructions, mon.stats.instructions,
            "{}",
            w.name
        );
        assert_eq!(base.stats.console, mon.stats.console, "{}", w.name);
        // Monitoring can only add cycles (miss exceptions), never remove.
        assert!(mon.stats.cycles >= base.stats.cycles, "{}", w.name);
        // The cycle delta is the monitor stalls, up to the small overlap
        // between exception freezes and in-flight operand interlocks.
        let delta = mon.stats.cycles - base.stats.cycles;
        assert!(delta <= mon.stats.monitor_stall_cycles, "{}", w.name);
        assert!(
            delta as f64 >= mon.stats.monitor_stall_cycles as f64 * 0.98,
            "{}: delta {delta} vs stalls {}",
            w.name,
            mon.stats.monitor_stall_cycles
        );
    }
}

#[test]
fn exception_cost_scales_overhead() {
    let w = cimon::workloads::by_name("stringsearch").unwrap();
    let prog = w.assemble();
    let cheap = run_monitored(
        &prog.image,
        &SimConfig {
            exception_cycles: 10,
            ..SimConfig::default()
        },
        None,
    )
    .unwrap();
    let costly = run_monitored(
        &prog.image,
        &SimConfig {
            exception_cycles: 1000,
            ..SimConfig::default()
        },
        None,
    )
    .unwrap();
    let misses = cheap.stats.cic.unwrap().misses;
    assert_eq!(
        misses,
        costly.stats.cic.unwrap().misses,
        "miss behaviour must not depend on cost"
    );
    assert_eq!(cheap.stats.monitor_stall_cycles, misses * 10);
    assert_eq!(costly.stats.monitor_stall_cycles, misses * 1000);
}
