//! Workspace smoke test: the `cimon::prelude` surface is wired end to
//! end. Assembling a program and running it on the baseline and the
//! monitored processor must agree on the architectural outcome, with
//! monitoring costing cycles, never correctness.

use cimon::prelude::*;

const PROGRAM: &str = "
    .text
main:
    li   $t0, 12
    li   $t1, 1
loop:
    addu $t1, $t1, $t1
    addiu $t0, $t0, -1
    bnez $t0, loop
    move $a0, $t1
    li   $v0, 10
    syscall
";

#[test]
fn prelude_surface_assembles_and_runs() {
    let prog = cimon::asm::assemble(PROGRAM).expect("program assembles");

    let base = run_baseline(&prog.image);
    let mon =
        run_monitored(&prog.image, &SimConfig::default(), None).expect("FHT generation succeeds");

    // 2^12 doublings of 1.
    assert_eq!(base.outcome, RunOutcome::Exited { code: 4096 });
    assert_eq!(mon.outcome, base.outcome);
    assert_eq!(mon.stats.instructions, base.stats.instructions);
    assert!(
        mon.stats.cycles >= base.stats.cycles,
        "monitoring never speeds a program up"
    );
    assert!(mon.fht_entries > 0, "static analysis found basic blocks");
    assert!(overhead_percent(base.stats.cycles, mon.stats.cycles) >= 0.0);
}

#[test]
fn prelude_exposes_checker_configuration() {
    let prog = cimon::asm::assemble(PROGRAM).expect("program assembles");

    // The prelude's types compose: a custom config built from prelude
    // names drives a monitored run with a pre-built FHT.
    let cfg = SimConfig {
        iht_entries: 16,
        hash_algo: HashAlgoKind::Crc32,
        ..SimConfig::default()
    };
    let fht = build_fht(&prog.image, &cfg).expect("CRC FHT builds");
    let rep = run_monitored_with_fht(&prog.image, fht, &cfg);
    assert_eq!(rep.outcome, RunOutcome::Exited { code: 4096 });

    // Processor and CicConfig are reachable through the prelude too.
    let _ = ProcessorConfig::baseline();
    let _ = CicConfig {
        iht_entries: 16,
        hash_algo: HashAlgoKind::Crc32,
        hash_seed: 0,
    };
}
