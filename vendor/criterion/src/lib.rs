//! Minimal, API-compatible subset of `criterion` 0.5.
//!
//! Vendored because this build environment has no crates.io access.
//! It implements the surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `Throughput`
//! and `BenchmarkId` — with a simple measurement loop: each benchmark
//! is warmed up once, then timed over a fixed batch of iterations and
//! reported as mean ns/iter on stdout. No statistics, plots, or
//! baseline storage; swap the workspace manifest back to
//! `criterion = "0.5"` for the real harness without touching call
//! sites.

use std::fmt;
use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Number of timed iterations per benchmark in the shim.
const DEFAULT_ITERS: u64 = 50;

/// Measurement context handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Time `f`, recording mean ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up pass keeps lazy initialisation out of the timing.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.last_ns_per_iter = total.as_nanos() as f64 / self.iters as f64;
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter (group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<O, F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher) -> O,
    {
        let id = id.into();
        let mut b = Bencher {
            iters: DEFAULT_ITERS,
            last_ns_per_iter: 0.0,
        };
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, O, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I) -> O,
    {
        let id = id.into();
        let mut b = Bencher {
            iters: DEFAULT_ITERS,
            last_ns_per_iter: 0.0,
        };
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// End the group (report layout only; nothing is persisted).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.last_ns_per_iter > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 * 1e3 / b.last_ns_per_iter)
            }
            Some(Throughput::Bytes(n)) if b.last_ns_per_iter > 0.0 => {
                format!("  ({:.1} MB/s)", n as f64 * 1e3 / b.last_ns_per_iter)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<28} {:>14.1} ns/iter{}",
            self.name, id, b.last_ns_per_iter, rate
        );
    }
}

/// The benchmark harness entry object.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<O, F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher) -> O,
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declare a group-running function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` from group-running functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("const", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn harness_runs_groups() {
        benches();
    }
}
