//! Minimal, deterministic, API-compatible subset of `proptest` 1.x.
//!
//! Vendored because this build environment has no crates.io access.
//! It covers the surface the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer
//!   ranges, tuples, and function-built strategies;
//! * [`arbitrary::any`] for the primitive types the tests draw;
//! * [`sample::select`] and [`sample::Index`];
//! * [`collection::vec`];
//! * the [`proptest!`], [`prop_compose!`], [`prop_oneof!`] and
//!   `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: cases
//! are generated from a fixed per-test seed (fully reproducible, no
//! persistence files), and failing cases are reported without
//! shrinking. Each `#[test]` inside [`proptest!`] runs
//! [`NUM_CASES`] generated cases.

pub mod test_runner {
    //! The deterministic case generator.

    /// Splittable deterministic RNG (SplitMix64) used to drive value
    /// generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from a test's name, so every test has an
        /// independent but reproducible stream.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform index in `0..bound` (`bound` > 0).
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "cannot sample an empty range");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// Number of generated cases per property test.
pub const NUM_CASES: u32 = 64;

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as u128 + off) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

    /// A strategy built from a generation closure (backs
    /// `prop_compose!`).
    pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
        f: F,
    }

    /// Wrap a closure as a strategy.
    pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<T, F> {
        FnStrategy { f }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Uniform choice between boxed alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `choices` (must be non-empty).
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(
                !choices.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { choices }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.choices.len());
            self.choices[i].generate(rng)
        }
    }

    /// Always yields clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            rng.next_u64() as i32
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod sample {
    //! Sampling helpers: `select` and `Index`.

    use crate::arbitrary::Arbitrary;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly-chosen clones of `options`.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Choose uniformly from a non-empty vector.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }

    /// An index into a collection whose length is only known at use
    /// time — `idx.index(len)` is uniform in `0..len`.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Project onto `0..len` (`len` > 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index {
                raw: rng.next_u64(),
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let n = self.len.start + rng.below(span.max(1));
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Run each property as `NUM_CASES` deterministic generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Compose named sub-strategies into a strategy-returning function.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$attr:meta])* $vis:vis fn $name:ident()( $($arg:ident in $strat:expr),+ $(,)? ) -> $ret:ty $body:block) => {
        $(#[$attr])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Uniform choice between alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// `assert!` under a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0u32..10, b in 0u32..10) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in any::<u16>()) {
            prop_assert!((3..9).contains(&x));
            let _ = y;
        }

        #[test]
        fn composed_pairs_in_bounds(p in arb_pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }

        #[test]
        fn oneof_covers_all_alternatives(v in prop::collection::vec(
            prop_oneof![(0u8..1).prop_map(|_| 0u8), (0u8..1).prop_map(|_| 1u8)],
            200..201,
        )) {
            prop_assert!(v.contains(&0));
            prop_assert!(v.contains(&1));
        }

        #[test]
        fn select_only_yields_options(v in prop::sample::select(vec![2u8, 4, 6])) {
            prop_assert!(v == 2 || v == 4 || v == 6);
        }

        #[test]
        fn index_projects_in_range(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(7) < 7);
        }
    }
}
