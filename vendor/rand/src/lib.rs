//! Minimal, deterministic, API-compatible subset of `rand` 0.8.
//!
//! This build environment has no crates.io access, so the workspace
//! vendors the tiny slice of `rand` it actually consumes: `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer
//! ranges. The generator is SplitMix64 — statistically solid for
//! simulation workloads and fully reproducible from a `u64` seed,
//! which is all the fault campaigns and refill policies require.
//! Swap the workspace manifest back to `rand = "0.8"` to use the real
//! crate; no call sites change.

use std::ops::Range;

/// A random number generator core: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator seedable from integers, for reproducible streams.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Modulo bias is < 2^-64 for every span this workspace
                // uses; acceptable for a simulation shim.
                let off = (rng.next_u64() as u128) % span;
                (self.start as u128 + off) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample in `range` (half-open).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl StdRng {
        /// The generator's current internal state word. Feeding it back
        /// through [`SeedableRng::seed_from_u64`] reproduces the stream
        /// exactly — the checkpoint spill serializes refill-policy RNGs
        /// this way. Shim-only extension: the real `rand` crate does not
        /// expose `StdRng` internals, so code using it must stay inside
        /// the workspace's snapshot plumbing.
        pub fn state(&self) -> u64 {
            self.state
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..6);
            assert!((-5..6).contains(&w));
        }
    }

    #[test]
    fn state_round_trips_through_seed_from_u64() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let _ = a.gen_range(0u64..100);
        }
        let mut b = StdRng::seed_from_u64(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 60) == b.gen_range(0u64..1 << 60))
            .count();
        assert!(same < 4);
    }
}
